//! The `pombm` subcommands.
//!
//! Every command is a pure function from parsed [`Args`] to a printable
//! string (plus file side effects where documented), so the whole surface
//! is unit-testable without spawning processes.

use crate::args::Args;
use pombm::sweep::{DYNAMIC_FLAVOR, STATIC_FLAVOR};
use pombm::{
    dynamic_competitive_ratio, merge_dynamic, merge_static, registry, run_dynamic_spec,
    run_dynamic_sweep, run_dynamic_sweep_partition, run_spec, run_sweep, run_sweep_partition,
    AlgorithmSpec, DynamicConfig, DynamicMeasurement, DynamicPartialSweepReport,
    DynamicSweepConfig, DynamicSweepReport, EpochConfig, PartialRunStats, PartialSweepReport,
    PartitionPlan, PartitionRun, PipelineConfig, Role, SweepConfig, SweepReport, DEFAULT_SCENARIO,
};
use pombm_geom::{seeded_rng, Point};
use pombm_hst::wire;
use pombm_workload::{chengdu, synthetic, Instance, SyntheticParams};
use serde::Deserialize as _;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Top-level usage text.
pub const USAGE: &str = "\
pombm — privacy-preserving online task assignment (ICDE'20 TBF)

USAGE: pombm <command> [flags]

COMMANDS:
  gen         generate a workload instance as JSON
              --tasks N --workers N [--mu F] [--sigma F] [--seed N]
              [--real [--day N]] --out FILE
  run         run one algorithm on an instance JSON and print metrics
              (--input FILE | --scenario NAME [--size N])
              (--algo NAME | --mechanism M --matcher S)
              [--epsilon F] [--grid-side N] [--capacity N] [--seed N]
              [--threads N] [--json]
              --scenario generates the instance from a registered workload
              scenario (`pombm list scenarios`) instead of reading a file
              --threads parallelizes batched obfuscation and the Hungarian
              offline-opt matcher (0 = auto); results are bit-identical
              for every thread count
              `pombm list algorithms` lists every name; --algo accepts
              registered pairings (tbf, lap-gr, exp-chain, ...) while
              --mechanism and --matcher compose any mechanism x matcher
              product freely
  list        list the registry catalogs
              [algorithms|fault-plans|scenarios|all]   (default: all)
              algorithms covers --algo pairings, mechanisms, matchers and
              dynamic matchers (the `dynamic-opt` clairvoyant oracle is
              shown with its [oracle-only] role); scenarios are the named
              spatial+temporal workload models (use with --scenario /
              --scenarios)
  algorithms  deprecated alias for `pombm list algorithms` (plus fault
              plans; also available as `pombm run --list-algorithms`)
  scenarios   deprecated alias for `pombm list scenarios`
  obfuscate   demo the TBF mechanism on one location
              --x F --y F [--epsilon F] [--grid-side N] [--samples N] [--seed N]
  publish     build an HST over a grid and write the wire format
              --grid-side N [--side F] [--seed N] --out FILE
  inspect     decode a published HST file and print its shape
              --input FILE
  epochs      multi-epoch deployment simulation under a lifetime budget
              --workers N [--epochs N] [--lifetime F] [--epsilon F] [--seed N]
  dynamic     event-driven simulation over a shifting worker fleet: any
              mechanism x dynamic-matcher pairing on one timeline
              [--tasks N] [--workers N] [--plan always-on|short|long]
              [--scenario NAME] [--mechanism M] [--matcher X] [--epsilon F]
              [--grid-side N] [--seed N] [--ratio [--reps N]] [--json]
              --ratio also solves the clairvoyant offline optimum
              (`dynamic-opt`) on the same timeline and reports the
              empirical competitive ratio over N repetitions (default 3);
              `--matcher dynamic-opt` is then legal and reports exactly 1.0
  serve       resident micro-batched matching service fed by a built-in
              deterministic load generator (in-process framed transport)
              --load [--tasks N] [--workers N] [--plan always-on|short|long]
              [--scenario NAME] [--mechanism M] [--matcher X] [--epsilon F]
              [--grid-side N] [--seed N] [--batch-interval F] [--qps F]
              [--requests N] [--threads N] [--timings] [--json]
              [--fault-plan NAME [--fault-rate F]]
              [--queue-cap N [--shed-policy P]]
              assignments are a pure function of (seed, plan,
              batch-interval): --qps paces wall-clock delivery and
              --threads parallelizes per-window obfuscation, neither
              changes results; --timings adds latency percentiles
              (excluded from the deterministic JSON contract)
              --fault-plan injects deterministic chaos (none, flaky-wire,
              dup-storm, burst; `pombm list fault-plans` lists them) into
              the frame script off a dedicated seed stream; --queue-cap
              bounds the admission queue and --shed-policy picks what
              gives way (drop-newest, drop-oldest, deadline) with
              virtual-time retry backoff — faulted reports gain a
              `faults` block and stay
              byte-identical across --qps/--threads
  sweep       registry-wide empirical competitive-ratio sweep against the
              exact offline optimum, sharded across cores
              [--mechanisms A,B,..] [--matchers X,Y,..] [--scenarios S,S,..]
              [--sizes N,N,..] [--epsilons F,F,..] [--reps N] [--shards N]
              [--threads N] [--timings] [--grid-side N] [--seed N] [--json]
              [--partition i/N] [--checkpoint DIR] [--max-cells N]
              --scenarios adds workload scenarios as an outermost axis
              (default: just `uniform`, the legacy workload); the resolved
              names enter the config fingerprint, so partitioned runs,
              checkpoints and `pombm merge` extend unchanged
              --threads parallelizes inside a cell (0 = auto), --shards
              across cells; output is byte-identical for every combination
              --timings adds per-cell wall_ms columns (excluded from the
              deterministic JSON contract)
              omitting --mechanisms/--matchers sweeps the full registry
              product; `identity x offline-opt` always reports ratio 1.0
              with --dynamic: sweep the dynamic-fleet product instead
              (--matchers then names dynamic matchers; extra axis
              [--shift-plans always-on,short,long]; no --reps)
              --dynamic --ratio adds per-cell competitive-ratio and
              drop-latency percentile columns against the clairvoyant
              `dynamic-opt` oracle (which then joins the matcher axis and
              reports ratio exactly 1.0); the oracle enters the config
              fingerprint, so partitioned/checkpointed/merged ratio
              sweeps reassemble byte-identically
              --partition i/N (1-based) computes one contiguous slice of
              the job space into a self-describing partial report for
              `pombm merge`; --checkpoint DIR appends finished cells to a
              resumable fingerprint-keyed log (re-runs skip them, logged
              to stderr); --max-cells N stops a checkpointed run after N
              fresh cells (exit nonzero; re-run to resume)
  merge       validate partitioned sweep partials (disjoint full coverage,
              identical config fingerprints) and reassemble the
              single-process report — with --json, byte-identical to the
              `pombm sweep --json` of the same config
              <partials..> [--json]    (static or dynamic, not mixed)
  help        this text
";

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, String> {
    if !matches!(args.command.as_deref(), Some("merge") | Some("list")) {
        // Only `merge` (the partial files) and `list` (the topic) take
        // positional arguments.
        args.check_no_positionals()?;
    }
    match args.command.as_deref() {
        Some("gen") => gen(args),
        Some("run") => run_cmd(args),
        Some("list") => list_cmd(args),
        Some("algorithms") => {
            eprintln!("note: `pombm algorithms` is deprecated; use `pombm list algorithms`");
            Ok(list_algorithms())
        }
        Some("scenarios") => {
            eprintln!("note: `pombm scenarios` is deprecated; use `pombm list scenarios`");
            Ok(list_scenarios())
        }
        Some("obfuscate") => obfuscate(args),
        Some("publish") => publish(args),
        Some("inspect") => inspect(args),
        Some("epochs") => epochs(args),
        Some("dynamic") => dynamic(args),
        Some("serve") => serve(args),
        Some("sweep") => sweep(args),
        Some("merge") => merge_cmd(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// The topics `pombm list` accepts, in the order `all` prints them.
const LIST_TOPICS: &str = "algorithms fault-plans scenarios all";

/// `pombm list [algorithms|fault-plans|scenarios|all]`: the one
/// catalog-driven listing surface. `pombm algorithms` and
/// `pombm scenarios` survive as deprecated aliases over the same
/// section renderers, so every name printed anywhere comes from the
/// registry catalogs.
pub fn list_cmd(args: &Args) -> Result<String, String> {
    args.check_known(&[])?;
    let topic = match args.positionals() {
        [] => "all",
        [one] => one.as_str(),
        more => {
            return Err(format!(
                "list takes at most one topic, got {} (expected one of: {LIST_TOPICS})",
                more.len()
            ))
        }
    };
    match topic {
        "algorithms" => Ok(algorithms_section()),
        "fault-plans" => Ok(fault_plans_section()),
        "scenarios" => Ok(scenarios_section()),
        "all" => Ok(format!(
            "{}\n{}\n{}",
            algorithms_section(),
            fault_plans_section(),
            scenarios_section()
        )),
        other => Err(format!(
            "unknown list topic `{other}`; expected one of: {LIST_TOPICS}"
        )),
    }
}

/// The algorithm/mechanism/matcher sections of the catalog listing.
fn algorithms_section() -> String {
    let reg = registry();
    let mut out = String::new();
    let _ = writeln!(out, "registered algorithms (use with --algo):");
    for spec in reg.specs() {
        let _ = writeln!(
            out,
            "  {:<10} {:<10} = {} + {}",
            spec.name(),
            format!("[{}]", spec.label()),
            spec.mechanism.name(),
            spec.matcher.name(),
        );
    }
    let _ = writeln!(out, "\nmechanisms (use with --mechanism):");
    for m in reg.mechanisms() {
        let _ = writeln!(out, "  {:<10} {}", m.name(), m.summary());
    }
    let _ = writeln!(out, "\nmatchers (use with --matcher):");
    for m in reg.matchers() {
        let _ = writeln!(out, "  {:<10} {}", m.name(), m.summary());
    }
    let _ = writeln!(
        out,
        "\ndynamic matchers (use with `pombm dynamic --matcher` / `pombm sweep --dynamic`):"
    );
    for (m, role) in reg.dynamic_matcher_catalog().entries() {
        match role {
            Role::Pairing => {
                let _ = writeln!(out, "  {:<10} {}", m.name(), m.summary());
            }
            Role::OracleOnly => {
                let _ = writeln!(out, "  {:<10} [{}] {}", m.name(), role.label(), m.summary());
            }
        }
    }
    out
}

/// The fault-plan section of the catalog listing.
fn fault_plans_section() -> String {
    let reg = registry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault plans (use with `pombm serve --fault-plan`): deterministic chaos"
    );
    for p in reg.fault_plans() {
        let _ = writeln!(out, "  {:<10} {}", p.name(), p.summary());
    }
    out
}

/// The workload-scenario section of the catalog listing.
fn scenarios_section() -> String {
    let reg = registry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "registered scenarios (use with `run --scenario`, `dynamic --scenario`, \
         `serve --scenario`, `sweep --scenarios`):"
    );
    for s in reg.scenarios() {
        let _ = writeln!(out, "  {:<16} {}", s.name(), s.summary());
    }
    let _ = writeln!(
        out,
        "\nthe default is `{DEFAULT_SCENARIO}`, which reproduces the legacy workload \
         bit-for-bit"
    );
    out
}

/// `pombm algorithms` (deprecated alias; also `pombm run
/// --list-algorithms`): the legacy one-page dump, byte-identical to its
/// pre-`list` output — algorithms plus fault plans.
pub fn list_algorithms() -> String {
    format!("{}\n{}", algorithms_section(), fault_plans_section())
}

/// `pombm scenarios` (deprecated alias): the scenario catalogue.
pub fn list_scenarios() -> String {
    scenarios_section()
}

/// `pombm gen`: write a synthetic or Chengdu-like instance to JSON.
pub fn gen(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "tasks", "workers", "mu", "sigma", "seed", "real", "day", "radii", "out",
    ])?;
    let seed: u64 = args.get_or("seed", 0)?;
    let num_workers: usize = args.get_or("workers", SyntheticParams::default().num_workers)?;
    let instance = if args.switch("real") {
        let day: usize = args.get_or("day", 0)?;
        let city = chengdu::CityModel::generate(seed);
        if args.switch("radii") {
            chengdu::generate_day_with_radii(&city, day, num_workers, seed)
        } else {
            chengdu::generate_day(&city, day, num_workers, seed)
        }
    } else {
        let params = SyntheticParams {
            num_tasks: args.get_or("tasks", SyntheticParams::default().num_tasks)?,
            num_workers,
            mu: args.get_or("mu", SyntheticParams::default().mu)?,
            sigma: args.get_or("sigma", SyntheticParams::default().sigma)?,
            ..SyntheticParams::default()
        };
        let mut rng = seeded_rng(seed, 0xC11);
        if args.switch("radii") {
            synthetic::generate_with_radii(&params, &mut rng)
        } else {
            synthetic::generate(&params, &mut rng)
        }
    };
    let out: String = args.require("out")?;
    write_instance(&instance, Path::new(&out))?;
    Ok(format!(
        "wrote instance: {} tasks, {} workers -> {out}",
        instance.num_tasks(),
        instance.num_workers()
    ))
}

/// `pombm run`: execute one pipeline on an instance file.
pub fn run_cmd(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "input",
        "scenario",
        "size",
        "algo",
        "mechanism",
        "matcher",
        "epsilon",
        "grid-side",
        "capacity",
        "seed",
        "threads",
        "json",
        "scan",
        "list-algorithms",
    ])?;
    if args.switch("list-algorithms") {
        return Ok(list_algorithms());
    }
    let spec = parse_spec(args)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let instance = match (args.get("input"), args.get("scenario")) {
        (Some(_), Some(_)) => {
            return Err("give either --input or --scenario, not both".to_string());
        }
        (Some(input), None) => read_instance(Path::new(input))?,
        (None, Some(name)) => {
            let scenario = registry()
                .require_scenario(name)
                .map_err(|e| e.to_string())?;
            let size: usize = args.get_or("size", 48)?;
            scenario.instance(seed, size)
        }
        (None, None) => {
            return Err("missing instance: use --input FILE or --scenario NAME \
                 (see `pombm scenarios`)"
                .to_string());
        }
    };
    let config = PipelineConfig {
        epsilon: args.get_or("epsilon", 0.6)?,
        grid_side: args.get_or("grid-side", 64)?,
        engine: if args.switch("scan") {
            pombm_matching::HstGreedyEngine::Scan
        } else {
            pombm_matching::HstGreedyEngine::Indexed
        },
        euclid_cells: 32,
        capacity: args.get_or("capacity", 1)?,
        seed,
        threads: args.get_or("threads", 1)?,
    };
    let result = run_spec(&spec, &instance, &config, 0).map_err(|e| e.to_string())?;
    let m = &result.metrics;
    if args.switch("json") {
        serde_json::to_string_pretty(m).map_err(|e| e.to_string())
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "algorithm:       {} ({})", spec.label(), spec.name());
        let _ = writeln!(out, "mechanism:       {}", spec.mechanism.name());
        let _ = writeln!(out, "matcher:         {}", spec.matcher.name());
        let _ = writeln!(out, "matching size:   {}", m.matching_size);
        let _ = writeln!(out, "total distance:  {:.3}", m.total_distance);
        let _ = writeln!(out, "assign time:     {:?}", m.assign_time);
        let _ = writeln!(out, "obfuscation:     {:?}", m.obfuscation_time);
        let _ = writeln!(out, "setup (HST):     {:?}", m.setup_time);
        let _ = writeln!(out, "avg latency:     {:?}", m.avg_task_latency());
        Ok(out)
    }
}

/// Resolves `--algo NAME` or the free `--mechanism M --matcher S` pairing.
fn parse_spec(args: &Args) -> Result<AlgorithmSpec, String> {
    let algo = args.get("algo");
    let mechanism = args.get("mechanism");
    let matcher = args.get("matcher");
    match (algo, mechanism, matcher) {
        (Some(name), None, None) => parse_algorithm(name),
        (None, Some(mech), Some(strat)) => {
            registry().compose(mech, strat).map_err(|e| e.to_string())
        }
        (None, Some(_), None) | (None, None, Some(_)) => {
            Err("--mechanism and --matcher must be given together".to_string())
        }
        (Some(_), _, _) => Err("give either --algo or --mechanism/--matcher, not both".to_string()),
        (None, None, None) => Err(
            "missing algorithm: use --algo NAME or --mechanism M --matcher S \
             (see `pombm list algorithms`)"
                .to_string(),
        ),
    }
}

/// `pombm obfuscate`: show where the TBF mechanism sends one location.
pub fn obfuscate(args: &Args) -> Result<String, String> {
    args.check_known(&["x", "y", "epsilon", "grid-side", "samples", "side", "seed"])?;
    let x: f64 = args.require("x")?;
    let y: f64 = args.require("y")?;
    let side: f64 = args.get_or("side", 200.0)?;
    let grid_side: usize = args.get_or("grid-side", 32)?;
    let samples: usize = args.get_or("samples", 5)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let epsilon = pombm_privacy::Epsilon::new(args.get_or("epsilon", 0.6)?);

    let location = Point::new(x, y);
    let server = pombm::Server::new(pombm_geom::Rect::square(side), grid_side, seed);
    if !server.region().contains(&location) {
        return Err(format!(
            "location ({x}, {y}) outside the {side}x{side} workspace"
        ));
    }
    let mech = pombm_privacy::HstMechanism::new(server.hst(), epsilon);
    let leaf = server.snap(&location);
    let snapped = server
        .leaf_location(leaf)
        .expect("snapped leaf is always real");
    let mut rng = seeded_rng(seed, 0x0BF);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "true location ({x}, {y}) snaps to predefined point ({}, {}) [leaf {}]",
        snapped.x, snapped.y, leaf
    );
    for i in 0..samples {
        let z = mech.obfuscate(server.hst(), leaf, &mut rng);
        let rep = server.hst().representative_point(z);
        let _ = writeln!(
            out,
            "sample {i}: leaf {z}{} near ({:.1}, {:.1}), tree distance {:.2}",
            if server.hst().is_real(z) {
                ""
            } else {
                " (fake)"
            },
            rep.x,
            rep.y,
            server.hst().tree_dist(leaf, z),
        );
    }
    Ok(out)
}

/// `pombm publish`: build an HST and write the paper's compact wire format.
pub fn publish(args: &Args) -> Result<String, String> {
    args.check_known(&["grid-side", "side", "seed", "out"])?;
    let grid_side: usize = args.get_or("grid-side", 32)?;
    let side: f64 = args.get_or("side", 200.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let out: String = args.require("out")?;
    let server = pombm::Server::new(pombm_geom::Rect::square(side), grid_side, seed);
    let bytes = wire::encode(server.hst());
    let len = bytes.len();
    std::fs::write(&out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    Ok(format!(
        "published HST over N = {} points (depth {}, branching {}): {len} bytes -> {out}",
        server.num_predefined(),
        server.hst().depth(),
        server.hst().branching(),
    ))
}

/// `pombm inspect`: decode a published HST file.
pub fn inspect(args: &Args) -> Result<String, String> {
    args.check_known(&["input"])?;
    let input: String = args.require("input")?;
    let data = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
    let published =
        wire::decode(bytes::Bytes::from(data)).map_err(|e| format!("decode {input}: {e}"))?;
    Ok(format!(
        "valid published HST: N = {} predefined points, depth {}, branching {}, scale {:.6}",
        published.points.len(),
        published.ctx.depth,
        published.ctx.branching,
        published.scale,
    ))
}

/// `pombm epochs`: the multi-epoch budget simulation as a console table.
pub fn epochs(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "workers", "epochs", "lifetime", "epsilon", "drift", "tasks", "seed",
    ])?;
    let num_workers: usize = args.get_or("workers", 500)?;
    let config = EpochConfig {
        num_epochs: args.get_or("epochs", 10)?,
        lifetime_epsilon: args.get_or("lifetime", 3.0)?,
        epoch_epsilon: args.get_or("epsilon", 0.6)?,
        worker_drift: args.get_or("drift", 10.0)?,
        tasks_per_epoch: args.get_or("tasks", 200)?,
        seed: args.get_or("seed", 0)?,
        ..EpochConfig::default()
    };
    let report = pombm::run_epochs(num_workers, &config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>7} {:>7} {:>11} {:>14} {:>6}",
        "epoch", "fresh", "stale", "staleness", "total_dist", "pairs"
    );
    for m in &report.per_epoch {
        let _ = writeln!(
            out,
            "{:>5} {:>7} {:>7} {:>11.2} {:>14.1} {:>6}",
            m.epoch,
            m.fresh_reports,
            m.stale_reports,
            m.avg_report_staleness,
            m.total_distance,
            m.matching_size
        );
    }
    let _ = writeln!(
        out,
        "degradation (last/first): {:.2}x; worker budget spent: {:.1}",
        report.degradation(),
        report.worker_budget_spent
    );
    Ok(out)
}

/// `pombm dynamic`: one event-driven simulation over a shifting fleet,
/// through any registered `mechanism × dynamic-matcher` pairing.
pub fn dynamic(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "tasks",
        "workers",
        "plan",
        "scenario",
        "mechanism",
        "matcher",
        "epsilon",
        "grid-side",
        "seed",
        "ratio",
        "reps",
        "json",
    ])?;
    let ratio = args.switch("ratio");
    if args.switch("reps") && !ratio {
        return Err("--reps only applies with --ratio \
                    (plain `pombm dynamic` replays one deterministic timeline)"
            .to_string());
    }
    let num_tasks: usize = args.get_or("tasks", 200)?;
    let num_workers: usize = args.get_or("workers", 100)?;
    let plan_kind: String = args.get_or("plan", "short".to_string())?;
    let seed: u64 = args.get_or("seed", 0)?;
    let scenario = {
        let name: String = args.get_or("scenario", DEFAULT_SCENARIO.to_string())?;
        registry()
            .require_scenario(&name)
            .map_err(|e| e.to_string())?
    };
    let mechanism = {
        let name: String = args.get_or("mechanism", "hst".to_string())?;
        registry().mechanism(&name).ok_or_else(|| {
            format!(
                "unknown mechanism `{name}`; expected one of: {}",
                registry()
                    .mechanisms()
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(" ")
            )
        })?
    };
    let matcher = {
        let name: String = args.get_or("matcher", "hst-greedy".to_string())?;
        // Under --ratio the oracle itself is a legal matcher (its cell
        // reports ratio exactly 1.0); without it, only pairing matchers
        // can drive the fleet.
        if ratio {
            registry()
                .dynamic_matcher_any(&name)
                .map_err(|e| e.to_string())?
        } else {
            registry()
                .require_dynamic_matcher(&name)
                .map_err(|e| e.to_string())?
        }
    };
    let instance = scenario.timeline_instance(seed, num_tasks, num_workers);
    let times = scenario.task_times(seed, num_tasks);
    let plan = scenario
        .shift_plan(&plan_kind, num_workers, seed)
        .map_err(|e| e.to_string())?;
    let config = DynamicConfig {
        epsilon: args.get_or("epsilon", 0.6)?,
        grid_side: args.get_or("grid-side", 32)?,
        seed,
    };
    if ratio {
        let reps: u64 = args.get_or("reps", 3)?;
        let report = dynamic_competitive_ratio(
            &instance,
            &times,
            &plan,
            &config,
            mechanism.as_ref(),
            matcher.as_ref(),
            reps,
        )
        .map_err(|e| e.to_string())?;
        if args.switch("json") {
            return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
        }
        let mut out = String::new();
        let _ = writeln!(out, "mechanism:        {}", report.mechanism);
        let _ = writeln!(out, "matcher:          {}", report.matcher);
        let _ = writeln!(out, "oracle:           {}", report.oracle);
        if scenario.name() != DEFAULT_SCENARIO {
            let _ = writeln!(out, "scenario:         {}", scenario.name());
        }
        let _ = writeln!(out, "shift plan:       {plan_kind}");
        let _ = writeln!(
            out,
            "tasks:            {num_tasks} (oracle assigns {}, drops {})",
            report.opt_assigned, report.opt_dropped
        );
        let _ = writeln!(out, "opt distance:     {:.3}", report.opt_distance);
        let _ = writeln!(
            out,
            "mean distance:    {:.3} over {} reps",
            report.mean_distance, report.repetitions
        );
        let _ = writeln!(
            out,
            "ratio:            {:.4} (min {:.4}, max {:.4})",
            report.ratio, report.min_ratio, report.max_ratio
        );
        return Ok(out);
    }
    let outcome = run_dynamic_spec(
        &instance,
        &times,
        &plan,
        &config,
        mechanism.as_ref(),
        matcher.as_ref(),
    )
    .map_err(|e| e.to_string())?;
    if args.switch("json") {
        let m = DynamicMeasurement::from_outcome(&outcome);
        return serde_json::to_string_pretty(&m).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    let _ = writeln!(out, "mechanism:        {}", mechanism.name());
    let _ = writeln!(out, "matcher:          {}", matcher.name());
    if scenario.name() != DEFAULT_SCENARIO {
        let _ = writeln!(out, "scenario:         {}", scenario.name());
    }
    let _ = writeln!(out, "shift plan:       {plan_kind}");
    let _ = writeln!(
        out,
        "tasks:            {num_tasks} (assigned {}, dropped {})",
        outcome.pairs.len(),
        outcome.dropped_tasks
    );
    let _ = writeln!(out, "assignment rate:  {:.4}", outcome.assignment_rate());
    let _ = writeln!(out, "total distance:   {:.3}", outcome.total_distance);
    let _ = writeln!(out, "peak available:   {}", outcome.peak_available);
    Ok(out)
}

/// `pombm serve`: the resident micro-batched matching service. The
/// transport is in-process (length-prefixed frames on an mpsc channel), so
/// the only ingress is the built-in deterministic load generator —
/// `--load` is therefore required, making the contract explicit on the
/// command line. Assignments are a pure function of
/// `(seed, plan, batch-interval)`: `--qps` and `--threads` trade wall-clock
/// only, never results (CI's serve-smoke job byte-compares the JSON across
/// both).
pub fn serve(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "load",
        "tasks",
        "workers",
        "plan",
        "scenario",
        "mechanism",
        "matcher",
        "epsilon",
        "grid-side",
        "seed",
        "batch-interval",
        "qps",
        "requests",
        "threads",
        "timings",
        "json",
        "fault-plan",
        "fault-rate",
        "queue-cap",
        "shed-policy",
    ])?;
    if !args.switch("load") {
        return Err(
            "serve's transport is in-process: pass --load to run the built-in \
             deterministic load generator against the resident service \
             (external ingress would need a network dependency this build \
             intentionally avoids)"
                .to_string(),
        );
    }
    let max_requests = match args.get("requests") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("flag --requests: cannot parse `{v}`"))?,
        ),
        None => None,
    };
    let fault_rate = match args.get("fault-rate") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("flag --fault-rate: cannot parse `{v}`"))?,
        ),
        None => None,
    };
    let queue_cap = match args.get("queue-cap") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("flag --queue-cap: cannot parse `{v}`"))?,
        ),
        None => None,
    };
    let config = pombm::ServeConfig {
        scenario: args.get("scenario").map(|s| s.to_string()),
        mechanism: args.get_or("mechanism", "hst".to_string())?,
        matcher: args.get_or("matcher", "hst-greedy".to_string())?,
        plan: args.get_or("plan", "short".to_string())?,
        num_tasks: args.get_or("tasks", 200)?,
        num_workers: args.get_or("workers", 100)?,
        epsilon: args.get_or("epsilon", 0.6)?,
        grid_side: args.get_or("grid-side", 32)?,
        seed: args.get_or("seed", 0)?,
        batch_interval: args.get_or("batch-interval", 5.0)?,
        qps: args.get_or("qps", 0.0)?,
        max_requests,
        threads: args.get_or("threads", 1)?,
        timings: args.switch("timings"),
        fault_plan: args.get("fault-plan").map(|s| s.to_string()),
        fault_rate,
        queue_cap,
        shed_policy: args.get("shed-policy").map(|s| s.to_string()),
    };
    let outcome = pombm::run_serve(&config).map_err(|e| e.to_string())?;
    let report = outcome.report;
    if args.switch("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    let _ = writeln!(out, "mechanism:        {}", report.mechanism);
    let _ = writeln!(out, "matcher:          {}", report.matcher);
    if let Some(scenario) = &report.scenario {
        let _ = writeln!(out, "scenario:         {scenario}");
    }
    let _ = writeln!(out, "shift plan:       {}", report.plan);
    let _ = writeln!(
        out,
        "batch interval:   {} (virtual time)",
        report.batch_interval
    );
    let _ = writeln!(
        out,
        "requests:         {} over {} micro-batches",
        report.requests, report.batches
    );
    let _ = writeln!(
        out,
        "tasks:            {} (assigned {}, dropped {})",
        report.assigned + report.dropped,
        report.assigned,
        report.dropped
    );
    let _ = writeln!(out, "assignment rate:  {:.4}", report.assignment_rate);
    let _ = writeln!(out, "total distance:   {:.3}", report.total_distance);
    let _ = writeln!(
        out,
        "queue depth:      peak {} mean {:.2}",
        report.peak_queue_depth, report.mean_queue_depth
    );
    let _ = writeln!(out, "fingerprint:      {}", report.assignment_fingerprint);
    if let Some(latency) = report.latency {
        let _ = writeln!(
            out,
            "latency ms:       p50 {:.3} p95 {:.3} p99 {:.3} max {:.3}",
            latency.p50_ms, latency.p95_ms, latency.p99_ms, latency.max_ms
        );
    }
    if let Some(faults) = &report.faults {
        if let (Some(plan), Some(rate)) = (&faults.plan, faults.rate) {
            let _ = writeln!(out, "fault plan:       {plan} @ rate {rate}");
        }
        if let Some(cap) = faults.queue_cap {
            let _ = writeln!(
                out,
                "queue cap:        {cap} ({})",
                faults.shed_policy.as_deref().unwrap_or("drop-newest")
            );
        }
        let _ = writeln!(
            out,
            "faults:           injected {} corrupt {} duplicates {}",
            faults.injected, faults.corrupt, faults.duplicates
        );
        let _ = writeln!(
            out,
            "overload:         shed {} retried {} expired {} (of {} submitted)",
            faults.shed, faults.retried, faults.expired, faults.submitted
        );
        for (class, count) in &faults.corrupt_classes {
            let _ = writeln!(out, "  corrupt class:  {count} × {class}");
        }
    }
    Ok(out)
}

/// `pombm sweep`: competitive ratios for a `mechanism × matcher × size × ε`
/// product, fanned across cores (deterministic in --seed for any --shards).
/// With `--dynamic`, sweeps the dynamic-fleet
/// `mechanism × dynamic-matcher × shift-plan × size × ε` product instead.
/// With `--partition i/N`, computes one slice into a partial report for
/// `pombm merge`; `--checkpoint DIR` makes any run resumable (the resume
/// statistics are logged to stderr, keeping stdout a pure report).
pub fn sweep(args: &Args) -> Result<String, String> {
    args.check_known(&[
        "mechanisms",
        "matchers",
        "scenarios",
        "sizes",
        "epsilons",
        "reps",
        "shards",
        "threads",
        "timings",
        "grid-side",
        "seed",
        "json",
        "dynamic",
        "shift-plans",
        "ratio",
        "partition",
        "checkpoint",
        "max-cells",
    ])?;
    let shards = match args.get_or("shards", 0usize)? {
        0 => std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        n => n,
    };
    let timings = args.switch("timings");
    let partitioning = partition_opts(args)?;
    if args.switch("dynamic") {
        if args.switch("threads") {
            return Err("--threads only applies to the static sweep: dynamic cells \
                        replay an event-sequential timeline whose RNG schedule is \
                        pinned by golden fingerprints"
                .to_string());
        }
        return dynamic_sweep(args, shards, timings, partitioning);
    }
    if args.switch("shift-plans") {
        return Err("--shift-plans only applies to `sweep --dynamic`".to_string());
    }
    if args.switch("ratio") {
        return Err("--ratio only applies to `sweep --dynamic` \
                    (the static sweep always reports competitive ratios)"
            .to_string());
    }
    let defaults = SweepConfig::default();
    let config = SweepConfig {
        mechanisms: parse_name_list(args, "mechanisms")?,
        matchers: parse_name_list(args, "matchers")?,
        scenarios: parse_name_list(args, "scenarios")?,
        sizes: parse_number_list(args, "sizes", defaults.sizes)?,
        epsilons: parse_number_list(args, "epsilons", defaults.epsilons)?,
        repetitions: args.get_or("reps", defaults.repetitions)?,
        shards,
        timings,
        base: PipelineConfig {
            grid_side: args.get_or("grid-side", 32)?,
            seed: args.get_or("seed", 0)?,
            // In-cell parallelism (batched obfuscation + Hungarian OPT);
            // bit-identical for every value, so the default of 1 leaves
            // the cores to the shard fan-out.
            threads: args.get_or("threads", 1)?,
            ..PipelineConfig::default()
        },
    };
    let Some(partitioning) = partitioning else {
        let report = run_sweep(&config).map_err(|e| e.to_string())?;
        if args.switch("json") {
            return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
        }
        return Ok(render_static_report(&report));
    };
    let (partial, stats) =
        run_sweep_partition(&config, &partitioning).map_err(|e| e.to_string())?;
    log_checkpoint(&partitioning, stats);
    if args.switch("partition") {
        if args.switch("json") {
            return serde_json::to_string_pretty(&partial).map_err(|e| e.to_string());
        }
        return Ok(render_static_partial(&partial));
    }
    // --checkpoint without --partition: a resumable full run whose output
    // is exactly the ordinary sweep report.
    let report = SweepReport {
        seed: partial.seed,
        repetitions: partial.repetitions,
        cells: partial.cells,
    };
    if args.switch("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
    }
    Ok(render_static_report(&report))
}

/// `pombm sweep --dynamic`: the dynamic-fleet sweep product.
fn dynamic_sweep(
    args: &Args,
    shards: usize,
    timings: bool,
    partitioning: Option<PartitionRun>,
) -> Result<String, String> {
    if args.switch("reps") {
        return Err("--reps does not apply to `sweep --dynamic` \
                    (each cell replays one deterministic timeline)"
            .to_string());
    }
    let defaults = DynamicSweepConfig::default();
    let config = DynamicSweepConfig {
        mechanisms: parse_name_list(args, "mechanisms")?,
        matchers: parse_name_list(args, "matchers")?,
        scenarios: parse_name_list(args, "scenarios")?,
        shift_plans: parse_name_list(args, "shift-plans")?,
        sizes: parse_number_list(args, "sizes", defaults.sizes)?,
        epsilons: parse_number_list(args, "epsilons", defaults.epsilons)?,
        shards,
        timings,
        ratio: args.switch("ratio"),
        grid_side: args.get_or("grid-side", 32)?,
        seed: args.get_or("seed", 0)?,
    };
    let Some(partitioning) = partitioning else {
        let report = run_dynamic_sweep(&config).map_err(|e| e.to_string())?;
        if args.switch("json") {
            return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
        }
        return Ok(render_dynamic_report(&report));
    };
    let (partial, stats) =
        run_dynamic_sweep_partition(&config, &partitioning).map_err(|e| e.to_string())?;
    log_checkpoint(&partitioning, stats);
    if args.switch("partition") {
        if args.switch("json") {
            return serde_json::to_string_pretty(&partial).map_err(|e| e.to_string());
        }
        return Ok(render_dynamic_partial(&partial));
    }
    let report = DynamicSweepReport {
        seed: partial.seed,
        horizon: partial.horizon,
        cells: partial.cells,
    };
    if args.switch("json") {
        return serde_json::to_string_pretty(&report).map_err(|e| e.to_string());
    }
    Ok(render_dynamic_report(&report))
}

/// Resolves the `--partition` / `--checkpoint` / `--max-cells` trio into
/// a [`PartitionRun`]; `None` when none of them was given (the ordinary
/// single-process path).
fn partition_opts(args: &Args) -> Result<Option<PartitionRun>, String> {
    let plan = match list_flag(args, "partition")? {
        Some(v) => Some(PartitionPlan::parse(v).map_err(|e| e.to_string())?),
        None => None,
    };
    let checkpoint = list_flag(args, "checkpoint")?.map(PathBuf::from);
    let max_cells = match list_flag(args, "max-cells")? {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("flag --max-cells: cannot parse `{v}`"))?,
        ),
        None => None,
    };
    if plan.is_none() && checkpoint.is_none() && max_cells.is_none() {
        return Ok(None);
    }
    Ok(Some(PartitionRun {
        plan: plan.unwrap_or_default(),
        checkpoint,
        max_cells,
    }))
}

/// Reports checkpoint resume statistics on stderr (stdout stays a pure
/// report so `--json > file` pipelines are unaffected).
fn log_checkpoint(run: &PartitionRun, stats: PartialRunStats) {
    if let Some(dir) = &run.checkpoint {
        eprintln!(
            "checkpoint {}: {} cells resumed (skipped recomputation), {} computed",
            dir.display(),
            stats.resumed,
            stats.computed
        );
    }
}

/// The static sweep cell table (shared by `sweep` and `merge` output);
/// the `wall_ms` column appears iff any cell carries a timing.
fn static_cell_table(cells: &[pombm::SweepCell]) -> String {
    let timings = cells.iter().any(|c| c.wall_ms.is_some());
    // The scenario column appears iff any cell left the default scenario,
    // mirroring the conditional `wall_ms` column: legacy sweeps render
    // byte-identically to the pre-scenario table.
    let scenarios = cells.iter().any(|c| c.scenario.is_some());
    let mut out = String::new();
    let scenario_header = if scenarios {
        format!("{:<16} ", "scenario")
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{scenario_header}{:<10} {:<12} {:>6} {:>6} {:>9} {:>9} {:>9} {:>12}{}",
        "mechanism",
        "matcher",
        "tasks",
        "eps",
        "ratio",
        "min",
        "max",
        "opt_dist",
        if timings { "    wall_ms" } else { "" }
    );
    for cell in cells {
        let wall = cell
            .wall_ms
            .map(|ms| format!(" {ms:>10.2}"))
            .unwrap_or_default();
        let scenario = if scenarios {
            format!(
                "{:<16} ",
                cell.scenario.as_deref().unwrap_or(DEFAULT_SCENARIO)
            )
        } else {
            String::new()
        };
        match (&cell.report, &cell.error) {
            (Some(r), _) => {
                let _ = writeln!(
                    out,
                    "{scenario}{:<10} {:<12} {:>6} {:>6.2} {:>9.4} {:>9.4} {:>9.4} {:>12.2}{wall}",
                    cell.mechanism,
                    cell.matcher,
                    cell.num_tasks,
                    cell.epsilon,
                    r.ratio,
                    r.min_ratio,
                    r.max_ratio,
                    r.opt_distance
                );
            }
            (None, Some(e)) => {
                let _ = writeln!(
                    out,
                    "{scenario}{:<10} {:<12} {:>6} {:>6.2} skipped: {e}",
                    cell.mechanism, cell.matcher, cell.num_tasks, cell.epsilon
                );
            }
            (None, None) => unreachable!("every cell has a report or an error"),
        }
    }
    out
}

/// The full static sweep console report: table plus summary footer.
fn render_static_report(report: &SweepReport) -> String {
    let mut out = static_cell_table(&report.cells);
    let _ = writeln!(
        out,
        "{} cells measured, {} skipped ({} reps each, seed {})",
        report.measured().count(),
        report.failed().count(),
        report.repetitions,
        report.seed
    );
    out
}

/// Console rendering of one static partition's partial report.
fn render_static_partial(partial: &PartialSweepReport) -> String {
    let covers = partial.covers();
    let mut out = format!(
        "partition {}/{} (static sweep): jobs {}..{} of {}, fingerprint {}\n",
        partial.partition_index,
        partial.partition_count,
        covers.start,
        covers.end,
        partial.total_jobs,
        partial.fingerprint
    );
    out.push_str(&static_cell_table(&partial.cells));
    let _ = writeln!(
        out,
        "{} cells covered ({} reps each, seed {}); merge with `pombm merge`",
        partial.cells.len(),
        partial.repetitions,
        partial.seed
    );
    out
}

/// The dynamic sweep cell table (shared by `sweep --dynamic` and `merge`).
fn dynamic_cell_table(cells: &[pombm::DynamicSweepCell]) -> String {
    let timings = cells.iter().any(|c| c.wall_ms.is_some());
    // Conditional column, as in [`static_cell_table`]: absent on
    // all-default-scenario sweeps so the legacy table survives unchanged.
    let scenarios = cells.iter().any(|c| c.scenario.is_some());
    // Ratio and drop-latency columns appear iff the sweep ran with
    // --ratio, so plain dynamic tables stay byte-identical.
    let ratios = cells.iter().any(|c| c.competitive_ratio.is_some());
    let mut out = String::new();
    let scenario_header = if scenarios {
        format!("{:<16} ", "scenario")
    } else {
        String::new()
    };
    let ratio_header = if ratios {
        format!(" {:>8} {:>9} {:>9}", "ratio", "drop_p50", "drop_p95")
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "{scenario_header}{:<10} {:<11} {:<10} {:>6} {:>5} {:>8} {:>8} {:>8} {:>12} {:>6}\
         {ratio_header}{}",
        "mechanism",
        "matcher",
        "plan",
        "tasks",
        "eps",
        "rate",
        "assigned",
        "dropped",
        "distance",
        "peak",
        if timings { "    wall_ms" } else { "" }
    );
    for cell in cells {
        let wall = cell
            .wall_ms
            .map(|ms| format!(" {ms:>10.2}"))
            .unwrap_or_default();
        let scenario = if scenarios {
            format!(
                "{:<16} ",
                cell.scenario.as_deref().unwrap_or(DEFAULT_SCENARIO)
            )
        } else {
            String::new()
        };
        let ratio_cols = if ratios {
            let fmt = |v: Option<f64>, width: usize| match v {
                Some(v) => format!(" {v:>width$.4}"),
                // A ratio cell whose latency percentile is undefined
                // (nothing dropped, or drops with no later shift).
                None => format!(" {:>width$}", "-"),
            };
            format!(
                "{}{}{}",
                fmt(cell.competitive_ratio, 8),
                fmt(cell.drop_latency_p50, 9),
                fmt(cell.drop_latency_p95, 9)
            )
        } else {
            String::new()
        };
        match (&cell.measurement, &cell.error) {
            (Some(m), _) => {
                let _ = writeln!(
                    out,
                    "{scenario}{:<10} {:<11} {:<10} {:>6} {:>5.2} {:>8.4} {:>8} {:>8} \
                     {:>12.2} {:>6}{ratio_cols}{wall}",
                    cell.mechanism,
                    cell.matcher,
                    cell.plan,
                    cell.num_tasks,
                    cell.epsilon,
                    m.assignment_rate,
                    m.assigned,
                    m.dropped,
                    m.total_distance,
                    m.peak_available
                );
            }
            (None, Some(e)) => {
                let _ = writeln!(
                    out,
                    "{scenario}{:<10} {:<11} {:<10} {:>6} {:>5.2} skipped: {e}",
                    cell.mechanism, cell.matcher, cell.plan, cell.num_tasks, cell.epsilon
                );
            }
            (None, None) => unreachable!("every cell has a measurement or an error"),
        }
    }
    out
}

/// The full dynamic sweep console report: table plus summary footer.
fn render_dynamic_report(report: &DynamicSweepReport) -> String {
    let mut out = dynamic_cell_table(&report.cells);
    let _ = writeln!(
        out,
        "{} cells measured, {} skipped (horizon {}, seed {})",
        report.measured().count(),
        report.failed().count(),
        report.horizon,
        report.seed
    );
    out
}

/// Console rendering of one dynamic partition's partial report.
fn render_dynamic_partial(partial: &DynamicPartialSweepReport) -> String {
    let covers = partial.covers();
    let mut out = format!(
        "partition {}/{} (dynamic sweep): jobs {}..{} of {}, fingerprint {}\n",
        partial.partition_index,
        partial.partition_count,
        covers.start,
        covers.end,
        partial.total_jobs,
        partial.fingerprint
    );
    out.push_str(&dynamic_cell_table(&partial.cells));
    let _ = writeln!(
        out,
        "{} cells covered (seed {}); merge with `pombm merge`",
        partial.cells.len(),
        partial.seed
    );
    out
}

/// `pombm merge <partials..> [--json]`: validate partial reports from
/// `pombm sweep --partition` (any order, static or dynamic but not mixed)
/// and reassemble the single-process report. With `--json` the output is
/// byte-identical to `pombm sweep --json` of the same configuration (any
/// machine-dependent `wall_ms` columns are stripped).
pub fn merge_cmd(args: &Args) -> Result<String, String> {
    args.check_known(&["json"])?;
    let files = args.positionals();
    if files.is_empty() {
        return Err("merge needs at least one partial-report file \
                    (produce them with `pombm sweep --partition i/N --json`)"
            .to_string());
    }
    let mut parsed = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let value: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("parse {file}: {e}"))?;
        let flavor = value["flavor"]
            .as_str()
            .ok_or_else(|| format!("{file}: not a partial sweep report (missing `flavor` field)"))?
            .to_string();
        parsed.push((file, value, flavor));
    }
    let flavor = parsed[0].2.clone();
    if let Some((file, _, other)) = parsed.iter().find(|(_, _, f)| *f != flavor) {
        return Err(format!(
            "cannot merge mixed flavours: {} is `{}` but {file} is `{other}` \
             (merge static and dynamic partials separately)",
            parsed[0].0, flavor
        ));
    }
    match flavor.as_str() {
        f if f == STATIC_FLAVOR => {
            let partials: Vec<PartialSweepReport> = parsed
                .iter()
                .map(|(file, value, _)| {
                    PartialSweepReport::from_value(value).map_err(|e| format!("parse {file}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let report = merge_static(&partials).map_err(|e| e.to_string())?;
            if args.switch("json") {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                Ok(render_static_report(&report))
            }
        }
        f if f == DYNAMIC_FLAVOR => {
            let partials: Vec<DynamicPartialSweepReport> = parsed
                .iter()
                .map(|(file, value, _)| {
                    DynamicPartialSweepReport::from_value(value)
                        .map_err(|e| format!("parse {file}: {e}"))
                })
                .collect::<Result<_, _>>()?;
            let report = merge_dynamic(&partials).map_err(|e| e.to_string())?;
            if args.switch("json") {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                Ok(render_dynamic_report(&report))
            }
        }
        other => Err(format!(
            "{}: unknown partial flavour `{other}` (expected `{STATIC_FLAVOR}` or \
             `{DYNAMIC_FLAVOR}`)",
            parsed[0].0
        )),
    }
}

/// The flag's comma-separated value, requiring a value when the flag is
/// present (`--sizes --json` must error, not fall back to the default).
fn list_flag<'a>(args: &'a Args, name: &str) -> Result<Option<&'a str>, String> {
    match args.get(name) {
        Some(v) => Ok(Some(v)),
        None if args.switch(name) => Err(format!("flag --{name} needs a value")),
        None => Ok(None),
    }
}

/// Splits a comma-separated list value, rejecting empty values, empty
/// entries and duplicates (`--mechanisms ""`, `--sizes 12,,16` and
/// `--sizes 16,16` must error, not silently shrink to the defaults or
/// inflate the sweep grid and its config fingerprint with repeated
/// jobs) — the same typed errors on the static and dynamic axes.
fn split_list<'a>(name: &str, value: &'a str) -> Result<Vec<&'a str>, String> {
    let items: Vec<&str> = value.split(',').map(str::trim).collect();
    if items.iter().all(|s| s.is_empty()) {
        return Err(format!("flag --{name} needs a value"));
    }
    if items.iter().any(|s| s.is_empty()) {
        return Err(format!("flag --{name}: empty entry in `{value}`"));
    }
    for (i, item) in items.iter().enumerate() {
        if items[..i].contains(item) {
            return Err(format!(
                "flag --{name}: duplicate entry `{item}` in `{value}`"
            ));
        }
    }
    Ok(items)
}

/// Splits a comma-separated name list; an absent flag means "all
/// registered" (the empty `SweepConfig` filter).
fn parse_name_list(args: &Args, name: &str) -> Result<Vec<String>, String> {
    match list_flag(args, name)? {
        None => Ok(Vec::new()),
        Some(v) => Ok(split_list(name, v)?.into_iter().map(String::from).collect()),
    }
}

/// Parses a comma-separated numeric flag into `Vec<T>`, with a default.
fn parse_number_list<T: std::str::FromStr>(
    args: &Args,
    name: &str,
    default: Vec<T>,
) -> Result<Vec<T>, String> {
    match list_flag(args, name)? {
        None => Ok(default),
        Some(v) => split_list(name, v)?
            .into_iter()
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("flag --{name}: cannot parse `{s}`"))
            })
            .collect(),
    }
}

/// Registry-driven, case-insensitive algorithm lookup with an error that
/// lists every valid name.
fn parse_algorithm(name: &str) -> Result<AlgorithmSpec, String> {
    registry().require_spec(name).map_err(|e| e.to_string())
}

fn write_instance(instance: &Instance, path: &Path) -> Result<(), String> {
    let json = serde_json::to_string(instance).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

fn read_instance(path: &Path) -> Result<Instance, String> {
    let data =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let instance: Instance =
        serde_json::from_str(&data).map_err(|e| format!("parse {}: {e}", path.display()))?;
    instance.validate().map_err(|e| e.to_string())?;
    Ok(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pombm-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_lists_all_commands() {
        let text = dispatch(&args("help")).unwrap();
        for cmd in [
            "gen",
            "run",
            "obfuscate",
            "publish",
            "inspect",
            "epochs",
            "dynamic",
            "serve",
            "sweep",
        ] {
            assert!(text.contains(cmd), "usage missing {cmd}");
        }
        assert_eq!(dispatch(&args("")).unwrap(), USAGE);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&args("frobnicate"))
            .unwrap_err()
            .contains("frobnicate"));
    }

    #[test]
    fn gen_then_run_roundtrip() {
        let path = tmp("roundtrip.json");
        let msg = gen(&args(&format!(
            "gen --tasks 40 --workers 70 --seed 3 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("40 tasks"));
        for algo in ["tbf", "lap-gr", "lap-hg", "exp-hg", "random"] {
            let out = run_cmd(&args(&format!(
                "run --input {} --algo {algo} --grid-side 16",
                path.display()
            )))
            .unwrap();
            assert!(out.contains("matching size:   40"), "{algo}: {out}");
        }
    }

    #[test]
    fn run_json_output_parses() {
        let path = tmp("json-out.json");
        gen(&args(&format!(
            "gen --tasks 20 --workers 30 --out {}",
            path.display()
        )))
        .unwrap();
        let out = run_cmd(&args(&format!(
            "run --input {} --algo tbf --grid-side 16 --json",
            path.display()
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["matching_size"], 20);
    }

    #[test]
    fn gen_real_writes_chengdu_day() {
        let path = tmp("real.json");
        let msg = gen(&args(&format!(
            "gen --real --day 2 --workers 300 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("300 workers"));
        let instance = read_instance(&path).unwrap();
        assert!(instance.num_tasks() > 1000, "a Chengdu day has 4k+ tasks");
    }

    #[test]
    fn obfuscate_prints_samples() {
        let out = obfuscate(&args(
            "obfuscate --x 50 --y 50 --grid-side 8 --samples 3 --epsilon 0.5",
        ))
        .unwrap();
        assert_eq!(out.matches("sample ").count(), 3);
        assert!(out.contains("snaps to predefined point"));
    }

    #[test]
    fn obfuscate_rejects_out_of_region() {
        let err = obfuscate(&args("obfuscate --x 500 --y 0")).unwrap_err();
        assert!(err.contains("outside"));
    }

    #[test]
    fn publish_then_inspect_roundtrip() {
        let path = tmp("tree.hst");
        let msg = publish(&args(&format!(
            "publish --grid-side 8 --seed 5 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("N = 64"));
        let info = inspect(&args(&format!("inspect --input {}", path.display()))).unwrap();
        assert!(info.contains("N = 64"), "{info}");
    }

    #[test]
    fn inspect_rejects_corrupt_file() {
        let path = tmp("corrupt.hst");
        std::fs::write(&path, b"not a tree").unwrap();
        assert!(inspect(&args(&format!("inspect --input {}", path.display()))).is_err());
    }

    #[test]
    fn epochs_prints_each_epoch() {
        let out = epochs(&args(
            "epochs --workers 60 --epochs 4 --lifetime 1.2 --tasks 30",
        ))
        .unwrap();
        assert_eq!(out.lines().count(), 4 + 2, "{out}");
        assert!(out.contains("degradation"));
    }

    #[test]
    fn algorithm_names_parse_case_insensitively() {
        assert_eq!(parse_algorithm("TBF").unwrap().name(), "tbf");
        assert_eq!(parse_algorithm("Tbf-Chain").unwrap().name(), "tbf-chain");
        assert_eq!(parse_algorithm("LapGr").unwrap().name(), "lap-gr");
        assert_eq!(parse_algorithm("exp-chain").unwrap().name(), "exp-chain");
        let err = parse_algorithm("nope").unwrap_err();
        assert!(
            err.contains("nope") && err.contains("tbf") && err.contains("exp-chain"),
            "error should list valid names: {err}"
        );
    }

    #[test]
    fn algorithms_command_lists_registry() {
        let out = dispatch(&args("algorithms")).unwrap();
        for name in [
            "tbf",
            "lap-gr",
            "exp-chain",
            "tbf-cap",
            "laplace",
            "chain",
            "capacity",
            "kd-rebuild",
            "dynamic matchers",
        ] {
            assert!(out.contains(name), "listing missing {name}:\n{out}");
        }
        assert_eq!(run_cmd(&args("run --list-algorithms")).unwrap(), out);
    }

    #[test]
    fn list_command_covers_every_catalog() {
        let all = dispatch(&args("list")).unwrap();
        assert_eq!(all, dispatch(&args("list all")).unwrap());
        let algorithms = dispatch(&args("list algorithms")).unwrap();
        let plans = dispatch(&args("list fault-plans")).unwrap();
        let scenarios = dispatch(&args("list scenarios")).unwrap();
        // `all` is exactly the topics in order, blank-line separated.
        assert_eq!(all, format!("{algorithms}\n{plans}\n{scenarios}"));
        assert!(
            algorithms.contains("dynamic-opt") && algorithms.contains("[oracle-only]"),
            "the clairvoyant oracle must be listed with its role:\n{algorithms}"
        );
        assert!(plans.contains("flaky-wire"), "{plans}");
        assert!(scenarios.contains("uniform"), "{scenarios}");
        let err = dispatch(&args("list nope")).unwrap_err();
        assert!(
            err.contains("nope") && err.contains("fault-plans"),
            "error should list valid topics: {err}"
        );
        let err = dispatch(&args("list algorithms scenarios")).unwrap_err();
        assert!(err.contains("at most one topic"), "{err}");
    }

    #[test]
    fn deprecated_aliases_render_from_the_same_catalogs() {
        let algorithms = dispatch(&args("algorithms")).unwrap();
        let expected = format!(
            "{}\n{}",
            dispatch(&args("list algorithms")).unwrap(),
            dispatch(&args("list fault-plans")).unwrap()
        );
        assert_eq!(algorithms, expected);
        assert_eq!(
            dispatch(&args("scenarios")).unwrap(),
            dispatch(&args("list scenarios")).unwrap()
        );
    }

    #[test]
    fn free_mechanism_matcher_pairing_runs() {
        let path = tmp("pairing.json");
        gen(&args(&format!(
            "gen --tasks 25 --workers 40 --seed 9 --out {}",
            path.display()
        )))
        .unwrap();
        // Two pairings the legacy enum could not express.
        for (mech, matcher) in [("exp", "chain"), ("hst", "capacity")] {
            let out = run_cmd(&args(&format!(
                "run --input {} --mechanism {mech} --matcher {matcher} --grid-side 16",
                path.display()
            )))
            .unwrap();
            assert!(
                out.contains("matching size:   25"),
                "{mech}+{matcher}: {out}"
            );
            assert!(out.contains(&format!("mechanism:       {mech}")), "{out}");
        }
    }

    #[test]
    fn algo_and_pairing_flags_are_exclusive() {
        let err = run_cmd(&args(
            "run --input x.json --algo tbf --mechanism exp --matcher chain",
        ))
        .unwrap_err();
        assert!(err.contains("not both"));
        let err = run_cmd(&args("run --input x.json --mechanism exp")).unwrap_err();
        assert!(err.contains("together"));
        let err = run_cmd(&args("run --input x.json")).unwrap_err();
        assert!(err.contains("pombm list algorithms"));
    }

    #[test]
    fn sweep_oracle_pairing_reports_ratio_one() {
        let out = sweep(&args(
            "sweep --mechanisms identity --matchers offline-opt --sizes 16 --reps 2 \
             --grid-side 16 --shards 1",
        ))
        .unwrap();
        assert!(out.contains("identity"), "{out}");
        assert!(out.contains("offline-opt"), "{out}");
        assert!(out.contains("1.0000"), "oracle ratio must be 1.0:\n{out}");
        assert!(out.contains("1 cells measured, 0 skipped"), "{out}");
    }

    #[test]
    fn sweep_json_output_parses_and_is_shard_independent() {
        let flags = "sweep --mechanisms identity,laplace --matchers greedy,offline-opt \
                     --sizes 12 --epsilons 0.4,1.0 --reps 2 --grid-side 16 --seed 5 --json";
        let one = sweep(&args(&format!("{flags} --shards 1"))).unwrap();
        let many = sweep(&args(&format!("{flags} --shards 3"))).unwrap();
        assert_eq!(one, many, "shard count changed the sweep output");
        let v: serde_json::Value = serde_json::from_str(&one).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 2 * 2 * 2);
    }

    #[test]
    fn sweep_skips_incompatible_cells_and_rejects_unknown_names() {
        let out = sweep(&args(
            "sweep --mechanisms blind --matchers greedy,random --sizes 10 --reps 1 --shards 1",
        ))
        .unwrap();
        assert!(out.contains("skipped:"), "{out}");
        assert!(out.contains("1 cells measured, 1 skipped"), "{out}");
        let err = sweep(&args("sweep --mechanisms bogus")).unwrap_err();
        assert!(err.contains("bogus") && err.contains("identity"), "{err}");
    }

    #[test]
    fn sweep_list_flags_without_values_are_rejected() {
        // A list flag swallowed by the next flag must error, not silently
        // fall back to the full registry / grid defaults — on both the
        // static and the dynamic sweep axes.
        for flags in [
            "sweep --mechanisms --json",
            "sweep --matchers --json",
            "sweep --sizes --json",
            "sweep --epsilons --json",
            "sweep --dynamic --mechanisms --json",
            "sweep --dynamic --matchers --json",
            "sweep --dynamic --shift-plans --json",
            "sweep --dynamic --sizes --json",
            "sweep --dynamic --epsilons --json",
        ] {
            let err = sweep(&args(flags)).unwrap_err();
            assert!(err.contains("needs a value"), "{flags}: {err}");
        }
    }

    /// Builds `Args` from explicit tokens (the whitespace-splitting helper
    /// cannot express empty string values).
    fn argv(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|t| t.to_string())).unwrap()
    }

    #[test]
    fn sweep_list_flags_reject_empty_values_and_entries() {
        // `--mechanisms ""` / `--sizes 12,,16` must error on both axes,
        // never silently shrink to the registry/grid defaults.
        for name in ["mechanisms", "matchers", "sizes", "epsilons"] {
            let flag = format!("--{name}");
            for dynamic in [false, true] {
                let mut tokens = vec!["sweep"];
                if dynamic {
                    tokens.push("--dynamic");
                }
                let err = sweep(&argv(&[&tokens[..], &[&flag, ""]].concat())).unwrap_err();
                assert!(
                    err.contains("needs a value"),
                    "{flag} dynamic={dynamic}: {err}"
                );
                let err = sweep(&argv(&[&tokens[..], &[&flag, ","]].concat())).unwrap_err();
                assert!(
                    err.contains("needs a value"),
                    "{flag} dynamic={dynamic}: {err}"
                );
                let err = sweep(&argv(&[&tokens[..], &[&flag, "a,,b"]].concat())).unwrap_err();
                assert!(
                    err.contains("empty entry"),
                    "{flag} dynamic={dynamic}: {err}"
                );
            }
        }
        let err = sweep(&argv(&["sweep", "--dynamic", "--shift-plans", ",,"])).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        // Trailing commas are empty entries too.
        let err = sweep(&argv(&["sweep", "--sizes", "12,"])).unwrap_err();
        assert!(err.contains("empty entry"), "{err}");
    }

    #[test]
    fn sweep_list_flags_reject_duplicate_entries() {
        // `--sizes 16,16` / `--mechanisms laplace,laplace` would silently
        // run duplicate jobs, inflating the cell grid and the config
        // fingerprint — rejected with the same typed error style as empty
        // entries, on both axes. Whitespace variants are duplicates too.
        for (name, value, dup) in [
            ("mechanisms", "laplace,laplace", "laplace"),
            ("matchers", "greedy,offline-opt,greedy", "greedy"),
            ("sizes", "16,16", "16"),
            ("epsilons", "0.5,1.0,0.5", "0.5"),
            ("sizes", "16, 16", "16"),
        ] {
            let flag = format!("--{name}");
            for dynamic in [false, true] {
                let mut tokens = vec!["sweep"];
                if dynamic {
                    tokens.push("--dynamic");
                }
                let err = sweep(&argv(&[&tokens[..], &[&flag, value]].concat())).unwrap_err();
                assert!(
                    err.contains("duplicate entry") && err.contains(dup),
                    "{flag} dynamic={dynamic}: {err}"
                );
            }
        }
        let err = sweep(&argv(&[
            "sweep",
            "--dynamic",
            "--shift-plans",
            "short,short",
        ]))
        .unwrap_err();
        assert!(err.contains("duplicate entry"), "{err}");
    }

    #[test]
    fn partition_flag_is_validated() {
        for bad in ["0/3", "4/3", "3", "a/b", "1/0", "/"] {
            let err = sweep(&args(&format!(
                "sweep --mechanisms identity --matchers greedy --sizes 8 --partition {bad}"
            )))
            .unwrap_err();
            assert!(err.contains("partition"), "{bad}: {err}");
        }
        let err = sweep(&args("sweep --partition --json")).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = sweep(&args("sweep --max-cells 3")).unwrap_err();
        assert!(err.contains("--checkpoint"), "{err}");
    }

    #[test]
    fn partitioned_sweep_merges_back_to_the_single_process_report() {
        let flags = "--mechanisms identity,laplace --matchers greedy,offline-opt \
                     --sizes 10 --epsilons 0.5,1.0 --reps 1 --shards 2 --grid-side 16 --seed 3";
        let full = sweep(&args(&format!("sweep {flags} --json"))).unwrap();
        let dir = tmp("partials");
        std::fs::create_dir_all(&dir).unwrap();
        let mut files = Vec::new();
        for i in 1..=3 {
            let partial = sweep(&args(&format!("sweep {flags} --partition {i}/3 --json"))).unwrap();
            let path = dir.join(format!("static-{i}.json"));
            std::fs::write(&path, partial).unwrap();
            files.push(path.display().to_string());
        }
        let merged = merge_cmd(&argv(
            &[
                &["merge"],
                files
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .as_slice(),
                &["--json"],
            ]
            .concat(),
        ))
        .unwrap();
        assert_eq!(
            full, merged,
            "merge is not byte-identical to the full sweep"
        );

        // The dynamic flavour holds the same contract.
        let dflags = "--dynamic --mechanisms identity,hst --matchers hst-greedy,random \
                      --shift-plans always-on,short --sizes 10 --grid-side 16 --seed 3";
        let dfull = sweep(&args(&format!("sweep {dflags} --json"))).unwrap();
        let mut dfiles = Vec::new();
        for i in 1..=2 {
            let partial =
                sweep(&args(&format!("sweep {dflags} --partition {i}/2 --json"))).unwrap();
            let path = dir.join(format!("dynamic-{i}.json"));
            std::fs::write(&path, partial).unwrap();
            dfiles.push(path.display().to_string());
        }
        let dmerged = merge_cmd(&argv(
            &[
                &["merge"],
                dfiles
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>()
                    .as_slice(),
                &["--json"],
            ]
            .concat(),
        ))
        .unwrap();
        assert_eq!(dfull, dmerged, "dynamic merge is not byte-identical");

        // Mixing the two flavours is a clean error, as is an empty call.
        let err = merge_cmd(&argv(&["merge", &files[0], &dfiles[0]])).unwrap_err();
        assert!(err.contains("mixed"), "{err}");
        let err = merge_cmd(&argv(&["merge"])).unwrap_err();
        assert!(err.contains("at least one"), "{err}");
        // An incomplete set is a typed gap, not silent cell loss.
        let err = merge_cmd(&argv(&["merge", &files[0], "--json"])).unwrap_err();
        assert!(err.contains("covered by no partial"), "{err}");
        // Garbage input names the file.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{\"flavor\":17}").unwrap();
        let err = merge_cmd(&argv(&["merge", &garbage.display().to_string()])).unwrap_err();
        assert!(err.contains("garbage.json"), "{err}");
    }

    #[test]
    fn partial_report_text_output_names_the_partition() {
        let out = sweep(&args(
            "sweep --mechanisms identity --matchers greedy,offline-opt --sizes 8 \
             --reps 1 --shards 1 --grid-side 16 --partition 2/2",
        ))
        .unwrap();
        assert!(out.contains("partition 2/2"), "{out}");
        assert!(out.contains("fingerprint"), "{out}");
        assert!(out.contains("pombm merge"), "{out}");
    }

    #[test]
    fn checkpointed_sweep_resumes_byte_identically() {
        let dir = tmp("checkpoint-cli");
        let _ = std::fs::remove_dir_all(&dir);
        let flags = format!(
            "sweep --mechanisms identity --matchers greedy,offline-opt --sizes 8,10 \
             --reps 1 --shards 2 --grid-side 16 --seed 9 --json --checkpoint {}",
            dir.display()
        );
        let fresh = sweep(&args(
            "sweep --mechanisms identity --matchers greedy,offline-opt --sizes 8,10 \
             --reps 1 --shards 2 --grid-side 16 --seed 9 --json",
        ))
        .unwrap();
        // A capped run stops early with a resumable error...
        let err = sweep(&args(&format!("{flags} --max-cells 1"))).unwrap_err();
        assert!(err.contains("--max-cells"), "{err}");
        assert!(err.contains("resume"), "{err}");
        // ...and the re-run resumes the surviving cell, finishing with
        // output byte-identical to an uncheckpointed sweep.
        let resumed = sweep(&args(&flags)).unwrap();
        assert_eq!(fresh, resumed);
        // A third run resumes everything and still matches.
        let resumed_all = sweep(&args(&flags)).unwrap();
        assert_eq!(fresh, resumed_all);
    }

    #[test]
    fn dynamic_command_runs_every_registered_matcher() {
        for matcher in ["hst-greedy", "kd-rebuild", "random"] {
            let out = dynamic(&args(&format!(
                "dynamic --tasks 40 --workers 30 --plan short --matcher {matcher} \
                 --grid-side 16 --seed 3"
            )))
            .unwrap();
            assert!(
                out.contains(&format!("matcher:          {matcher}")),
                "{out}"
            );
            assert!(out.contains("assignment rate:"), "{out}");
            assert!(out.contains("peak available:"), "{out}");
        }
    }

    #[test]
    fn dynamic_command_json_parses_and_is_reproducible() {
        let flags = "dynamic --tasks 30 --workers 40 --plan always-on --mechanism laplace \
                     --matcher kd-rebuild --grid-side 16 --seed 9 --json";
        let a = dynamic(&args(flags)).unwrap();
        let b = dynamic(&args(flags)).unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v["assigned"], 30, "always-on assigns everything");
        assert_eq!(v["dropped"], 0);
        assert_eq!(v["assignment_rate"], 1.0);
    }

    #[test]
    fn dynamic_command_rejects_unknown_names() {
        let err = dynamic(&args("dynamic --matcher bogus")).unwrap_err();
        assert!(err.contains("bogus") && err.contains("kd-rebuild"), "{err}");
        let err = dynamic(&args("dynamic --plan weekend")).unwrap_err();
        assert!(
            err.contains("weekend") && err.contains("always-on"),
            "{err}"
        );
        let err = dynamic(&args("dynamic --mechanism bogus")).unwrap_err();
        assert!(err.contains("bogus") && err.contains("laplace"), "{err}");
    }

    #[test]
    fn serve_requires_the_load_generator() {
        let err = serve(&args("serve")).unwrap_err();
        assert!(err.contains("--load"), "{err}");
    }

    #[test]
    fn serve_json_is_invariant_across_qps_and_threads() {
        let flags = "serve --load --tasks 60 --workers 45 --plan short --mechanism hst \
                     --matcher hst-greedy --batch-interval 5 --seed 7 --json";
        let base = serve(&args(flags)).unwrap();
        let throttled = serve(&args(&format!("{flags} --qps 3000"))).unwrap();
        assert_eq!(base, throttled, "QPS changed the serve artifact");
        let auto = serve(&args(&format!("{flags} --threads 0"))).unwrap();
        assert_eq!(base, auto, "thread count changed the serve artifact");
        let report: serde_json::Value = serde_json::from_str(&base).unwrap();
        // One CHECK_IN + one CHECK_OUT per worker, one TASK per task (the
        // SHUTDOWN sentinel is transport framing, not a request).
        assert_eq!(report["requests"].as_u64().unwrap(), 60 + 2 * 45);
        assert!(report.get("latency").is_none(), "{base}");
    }

    #[test]
    fn serve_table_reports_the_fingerprint_and_latency_needs_timings() {
        let flags = "serve --load --tasks 40 --workers 30 --seed 3 --requests 50";
        let out = serve(&args(flags)).unwrap();
        assert!(out.contains("fingerprint:"), "{out}");
        assert!(out.contains("requests:         50"), "{out}");
        assert!(!out.contains("latency"), "{out}");
        let timed = serve(&args(&format!("{flags} --timings"))).unwrap();
        assert!(timed.contains("latency ms:"), "{timed}");
    }

    #[test]
    fn serve_rejects_bad_flags_and_names() {
        let err = serve(&args("serve --load --mechanism bogus")).unwrap_err();
        assert!(err.contains("bogus") && err.contains("laplace"), "{err}");
        let err = serve(&args("serve --load --matcher greedy")).unwrap_err();
        assert!(
            err.contains("greedy") && err.contains("hst-greedy"),
            "{err}"
        );
        let err = serve(&args("serve --load --batch-interval 0")).unwrap_err();
        assert!(err.contains("batch-interval"), "{err}");
        let err = serve(&args("serve --load --qps -2")).unwrap_err();
        assert!(err.contains("qps"), "{err}");
        let err = serve(&args("serve --load --requests many")).unwrap_err();
        assert!(err.contains("--requests"), "{err}");
        let err = serve(&args("serve --laod")).unwrap_err();
        assert!(err.contains("--laod"), "{err}");
    }

    #[test]
    fn dynamic_sweep_runs_and_is_shard_independent() {
        let flags = "sweep --dynamic --mechanisms identity,hst --matchers hst-greedy,random \
                     --shift-plans always-on,short --sizes 12 --grid-side 16 --seed 5 --json";
        let one = sweep(&args(&format!("{flags} --shards 1"))).unwrap();
        let many = sweep(&args(&format!("{flags} --shards 3"))).unwrap();
        assert_eq!(one, many, "shard count changed the dynamic sweep output");
        let v: serde_json::Value = serde_json::from_str(&one).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 2 * 2 * 2);
    }

    #[test]
    fn dynamic_sweep_table_reports_rates_and_skips() {
        let out = sweep(&args(
            "sweep --dynamic --mechanisms blind --matchers hst-greedy,random \
             --shift-plans always-on --sizes 10 --shards 1 --grid-side 16",
        ))
        .unwrap();
        assert!(out.contains("skipped:"), "{out}");
        assert!(out.contains("1 cells measured, 1 skipped"), "{out}");
        let err = sweep(&args("sweep --dynamic --shift-plans weekend")).unwrap_err();
        assert!(err.contains("weekend") && err.contains("short"), "{err}");
        let err = sweep(&args("sweep --dynamic --reps 3")).unwrap_err();
        assert!(err.contains("--reps"), "{err}");
        let err = sweep(&args("sweep --shift-plans always-on")).unwrap_err();
        assert!(err.contains("--shift-plans"), "{err}");
    }

    #[test]
    fn typo_flags_are_rejected() {
        let err = run_cmd(&args("run --inptu x.json --algo tbf")).unwrap_err();
        assert!(err.contains("--inptu"));
    }

    #[test]
    fn threads_never_change_run_or_sweep_output() {
        // In-cell parallelism (batched obfuscation + Hungarian OPT) is
        // contractually invisible in the output at any thread count.
        let path = tmp("threads.json");
        gen(&args(&format!(
            "gen --tasks 30 --workers 40 --seed 4 --out {}",
            path.display()
        )))
        .unwrap();
        let run_flags = |threads: &str| {
            format!(
                "run --input {} --algo lap-gr --grid-side 16 --json{threads}",
                path.display()
            )
        };
        let baseline = run_cmd(&args(&run_flags(""))).unwrap();
        let v: serde_json::Value = serde_json::from_str(&baseline).unwrap();
        let distance = v["total_distance"].clone();
        for threads in ["--threads 2", "--threads 0"] {
            let out = run_cmd(&args(&run_flags(&format!(" {threads}")))).unwrap();
            let w: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert_eq!(w["total_distance"], distance, "{threads}");
        }
        let sweep_flags = "sweep --mechanisms identity,hst --matchers offline-opt,greedy \
                           --sizes 12 --reps 2 --shards 1 --grid-side 16 --seed 5 --json";
        let one = sweep(&args(&format!("{sweep_flags} --threads 1"))).unwrap();
        let many = sweep(&args(&format!("{sweep_flags} --threads 3"))).unwrap();
        assert_eq!(one, many, "--threads changed the sweep output");
    }

    #[test]
    fn timings_flag_adds_wall_ms_and_stays_out_of_plain_output() {
        let flags = "sweep --mechanisms identity --matchers greedy --sizes 10 --reps 1 \
                     --shards 1 --grid-side 16";
        let plain = sweep(&args(flags)).unwrap();
        assert!(!plain.contains("wall_ms"), "{plain}");
        let timed = sweep(&args(&format!("{flags} --timings"))).unwrap();
        assert!(timed.contains("wall_ms"), "{timed}");
        let timed_json = sweep(&args(&format!("{flags} --timings --json"))).unwrap();
        let v: serde_json::Value = serde_json::from_str(&timed_json).unwrap();
        let cell = &v["cells"].as_array().unwrap()[0];
        assert!(cell["wall_ms"].as_f64().is_some_and(|ms| ms >= 0.0));
        let plain_json = sweep(&args(&format!("{flags} --json"))).unwrap();
        assert!(!plain_json.contains("wall_ms"), "{plain_json}");
        // The dynamic flavour carries the same column.
        let dynamic_timed = sweep(&args(
            "sweep --dynamic --mechanisms identity --matchers random \
             --shift-plans always-on --sizes 8 --shards 1 --grid-side 16 --timings",
        ))
        .unwrap();
        assert!(dynamic_timed.contains("wall_ms"), "{dynamic_timed}");
    }

    #[test]
    fn dynamic_sweep_rejects_threads() {
        let err = sweep(&args("sweep --dynamic --threads 2")).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn scenarios_command_lists_the_catalogue() {
        let out = list_scenarios();
        for name in [
            "uniform",
            "normal",
            "hotspot",
            "poisson-disk",
            "adversarial-cell",
        ] {
            assert!(out.contains(name), "missing `{name}` in:\n{out}");
        }
    }

    #[test]
    fn run_generates_instances_from_scenarios() {
        let base = run_cmd(&args(
            "run --scenario hotspot --size 24 --algo lap-gr --grid-side 16 --seed 2 --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&base).unwrap();
        assert_eq!(v["matching_size"], 24);
        // Scenario lookup is case-insensitive, and resolution does not
        // perturb the generated instance (metrics JSON carries wall-clock
        // timings, so compare the deterministic field).
        let upper = run_cmd(&args(
            "run --scenario HotSpot --size 24 --algo lap-gr --grid-side 16 --seed 2 --json",
        ))
        .unwrap();
        let w: serde_json::Value = serde_json::from_str(&upper).unwrap();
        assert_eq!(
            v["total_distance"], w["total_distance"],
            "case changed the scenario resolution"
        );
        // Unknown names list the candidates; the two instance sources are
        // mutually exclusive and at least one is required.
        let err = run_cmd(&args("run --scenario bogus --algo tbf")).unwrap_err();
        assert!(
            err.contains("unknown scenario `bogus`") && err.contains("poisson-disk"),
            "{err}"
        );
        let err = run_cmd(&args("run --input x.json --scenario uniform --algo tbf")).unwrap_err();
        assert!(err.contains("not both"), "{err}");
        let err = run_cmd(&args("run --algo tbf")).unwrap_err();
        assert!(
            err.contains("--input") && err.contains("--scenario"),
            "{err}"
        );
    }

    #[test]
    fn dynamic_and_serve_accept_scenarios() {
        // The uniform default is the legacy derivation: an explicit
        // `--scenario uniform` is byte-identical to omitting the flag.
        let legacy = dynamic(&args(
            "dynamic --tasks 30 --workers 20 --grid-side 16 --json",
        ))
        .unwrap();
        let explicit = dynamic(&args(
            "dynamic --tasks 30 --workers 20 --grid-side 16 --scenario uniform --json",
        ))
        .unwrap();
        assert_eq!(legacy, explicit, "uniform is not the default");
        let hot = dynamic(&args(
            "dynamic --tasks 30 --workers 20 --grid-side 16 --scenario hotspot",
        ))
        .unwrap();
        assert!(hot.contains("scenario:         hotspot"), "{hot}");
        let err = dynamic(&args("dynamic --scenario bogus")).unwrap_err();
        assert!(err.contains("unknown scenario `bogus`"), "{err}");

        let legacy = serve(&args(
            "serve --load --tasks 30 --workers 20 --seed 5 --json",
        ))
        .unwrap();
        assert!(!legacy.contains("scenario"), "{legacy}");
        let normal = serve(&args(
            "serve --load --tasks 30 --workers 20 --seed 5 --scenario normal --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&normal).unwrap();
        assert_eq!(v["scenario"], "normal");
        assert_ne!(legacy, normal, "the scenario did not reach the workload");
        let err = serve(&args("serve --load --scenario bogus")).unwrap_err();
        assert!(err.contains("unknown scenario `bogus`"), "{err}");
    }

    #[test]
    fn sweep_scenarios_axis_extends_the_grid() {
        let flags = "--mechanisms identity --matchers greedy --sizes 10 --reps 1 \
                     --shards 1 --grid-side 16 --seed 3 --json";
        let legacy = sweep(&args(&format!("sweep {flags}"))).unwrap();
        // An explicit uniform-only axis is the same job list, cell for cell.
        let uniform = sweep(&args(&format!("sweep {flags} --scenarios uniform"))).unwrap();
        assert_eq!(legacy, uniform, "explicit uniform changed the sweep");
        let both = sweep(&args(&format!(
            "sweep {flags} --scenarios uniform,adversarial-cell"
        )))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&both).unwrap();
        let cells = v["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 2, "{both}");
        assert!(cells[0].get("scenario").is_none(), "{both}");
        assert_eq!(cells[1]["scenario"], "adversarial-cell");
        // The text table grows a scenario column only when one is present.
        let table = sweep(&args(
            "sweep --mechanisms identity --matchers greedy --sizes 10 --reps 1 \
             --shards 1 --grid-side 16 --scenarios uniform,normal",
        ))
        .unwrap();
        assert!(table.contains("scenario"), "{table}");
        let plain = sweep(&args(
            "sweep --mechanisms identity --matchers greedy --sizes 10 --reps 1 \
             --shards 1 --grid-side 16",
        ))
        .unwrap();
        assert!(!plain.contains("scenario"), "{plain}");
        // The dynamic flavour carries the same axis.
        let dyn_both = sweep(&args(
            "sweep --dynamic --mechanisms identity --matchers random \
             --shift-plans always-on --sizes 8 --shards 1 --grid-side 16 \
             --scenarios uniform,hotspot --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&dyn_both).unwrap();
        let cells = v["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 2, "{dyn_both}");
        assert_eq!(cells[1]["scenario"], "hotspot");
        let err = sweep(&args("sweep --scenarios uniform,uniform")).unwrap_err();
        assert!(err.contains("duplicate entry"), "{err}");
        let err = sweep(&args("sweep --scenarios bogus")).unwrap_err();
        assert!(err.contains("unknown scenario `bogus`"), "{err}");
    }
}
