//! Thin shell around [`pombm_cli::dispatch`].

fn main() {
    let args = match pombm_cli::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match pombm_cli::dispatch(&args) {
        Ok(out) => {
            if out.ends_with('\n') {
                print!("{out}");
            } else {
                println!("{out}");
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
