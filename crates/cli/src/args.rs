//! A tiny dependency-free flag parser for the `pombm` binary.
//!
//! Grammar: `pombm <command> [positional]... [--flag value]...
//! [--switch]...`. A token starting with `--` is a flag; it consumes the
//! next token as its value unless that token also starts with `--` (then
//! it is a boolean switch). Non-flag tokens after the command are
//! collected as positionals (`pombm merge a.json b.json`); commands that
//! take none reject them via [`Args::check_no_positionals`].

use std::collections::BTreeMap;
use std::str::FromStr;

/// Parsed command line: one command word, positionals, and flags.
///
/// Flags live in a `BTreeMap` so that [`Args::check_known`] reports the
/// alphabetically first unknown flag regardless of hash seeding — error
/// messages are part of the deterministic surface too.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The leading non-flag token, e.g. `run`.
    pub command: Option<String>,
    positionals: Vec<String>,
    flags: BTreeMap<String, Option<String>>,
}

impl Args {
    /// Parses raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty flag name `--`".into());
                }
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next(),
                    _ => None,
                };
                if args.flags.insert(name.to_string(), value).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positionals.push(tok);
            }
        }
        Ok(args)
    }

    /// Positional arguments after the command word, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Rejects positional arguments (for commands that take only flags).
    pub fn check_no_positionals(&self) -> Result<(), String> {
        match self.positionals.first() {
            None => Ok(()),
            Some(tok) => Err(format!("unexpected positional argument `{tok}`")),
        }
    }

    /// True iff the flag was present (with or without a value).
    pub fn switch(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// The flag's string value, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }

    /// Parses the flag's value into `T`, or returns `default` if absent.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(None) => Err(format!("flag --{name} needs a value")),
            Some(Some(v)) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Parses a required flag.
    pub fn require<T: FromStr>(&self, name: &str) -> Result<T, String> {
        match self.flags.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some(None) => Err(format!("flag --{name} needs a value")),
            Some(Some(v)) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{v}`")),
        }
    }

    /// Rejects flags outside `allowed` (catches typos early).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(format!(
                    "unknown flag --{name}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_flags() {
        let a = parse("run --epsilon 0.6 --quick --input x.json").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("input"), Some("x.json"));
        assert!(a.switch("quick"));
        assert_eq!(a.get_or("epsilon", 1.0).unwrap(), 0.6);
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let a = parse("gen --real --out f.json").unwrap();
        assert!(a.switch("real"));
        assert_eq!(a.get("real"), None);
        assert_eq!(a.get("out"), Some("f.json"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse("run --seed 1 --seed 2")
            .unwrap_err()
            .contains("twice"));
    }

    #[test]
    fn positionals_collected_and_rejectable() {
        let a = parse("merge a.json b.json --json").unwrap();
        assert_eq!(a.positionals(), ["a.json", "b.json"]);
        assert!(a.switch("json"));
        assert!(a.check_no_positionals().unwrap_err().contains("a.json"));
        assert!(parse("run").unwrap().check_no_positionals().is_ok());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse("run").unwrap();
        assert!(a.require::<f64>("epsilon").unwrap_err().contains("missing"));
    }

    #[test]
    fn parse_error_reports_flag_name() {
        let a = parse("run --seed abc").unwrap();
        assert!(a.get_or("seed", 0u64).unwrap_err().contains("--seed"));
    }

    #[test]
    fn unknown_flags_detected() {
        let a = parse("run --sed 1").unwrap();
        assert!(a.check_known(&["seed"]).unwrap_err().contains("--sed"));
        assert!(a.check_known(&["sed"]).is_ok());
    }

    #[test]
    fn no_command_is_none() {
        let a = parse("").unwrap();
        assert!(a.command.is_none());
    }
}
