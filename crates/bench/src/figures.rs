//! Regeneration of every figure in the paper's evaluation (Sec. IV).
//!
//! Each `fig*` function sweeps the Table II / Table III parameter it
//! reproduces, runs the compared algorithms, and returns a [`Report`] whose
//! rows mirror the paper's plotted series. Figure ids follow the paper:
//! `fig6a`–`fig6l` (synthetic sweeps × {distance, time, memory}), `fig7a`–
//! `fig7l` (ε, scalability, real data), `fig8a`–`fig8h` (case study).

use crate::alloc::measure_peak;
use crate::report::Report;
use pombm::{run, run_case_study, Algorithm, CaseStudyAlgorithm, PipelineConfig, Server};
use pombm_geom::seeded_rng;
use pombm_matching::hst_greedy::HstGreedyEngine;
use pombm_matching::reachable::{ProbMatcher, DEFAULT_THRESHOLD};
use pombm_privacy::reach::ReachTable;
use pombm_privacy::{Epsilon, HstMechanism, PlanarLaplace};
use pombm_workload::{chengdu, synthetic, Instance, RealParams, SyntheticParams};
use std::time::Instant;

/// Chengdu-like traces are generated in meters over 10 km and normalized to
/// 50 m units (10 km → 200 units) so ε carries the same meaning on synthetic
/// and real workloads; see `Instance::scaled`.
pub const REAL_UNIT_METERS: f64 = 50.0;

/// Harness-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Repetitions averaged per point (the paper uses 10).
    pub repetitions: u64,
    /// Shrink workloads ~10× for smoke runs.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// HST nearest-worker engine. The default `Indexed` produces matchings
    /// identical to the paper's linear scan but in `O(c·D)` per task; use
    /// `Scan` to time the paper's literal Alg. 4.
    pub engine: HstGreedyEngine,
    /// Euclidean matcher bucket-grid resolution (0 = linear scan).
    pub euclid_cells: usize,
    /// Predefined-point grid side (N = grid_side²). 64 keeps TBF's snapping
    /// floor well below the Laplace baselines across the whole ε sweep.
    pub grid_side: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            repetitions: 3,
            quick: false,
            seed: 2020,
            engine: HstGreedyEngine::Indexed,
            euclid_cells: 32,
            grid_side: 64,
        }
    }
}

impl ExperimentConfig {
    fn scale_count(&self, n: usize) -> usize {
        if self.quick {
            (n / 10).max(20)
        } else {
            n
        }
    }

    fn pipeline(&self, epsilon: f64, rep: u64) -> PipelineConfig {
        PipelineConfig {
            epsilon,
            grid_side: self.grid_side,
            engine: self.engine,
            euclid_cells: self.euclid_cells,
            seed: self.seed.wrapping_add(rep.wrapping_mul(0x51_7E)),
            ..PipelineConfig::default()
        }
    }
}

/// Runs the three main algorithms over one synthetic parameter sweep,
/// recording total distance, running time and memory under the three figure
/// ids of one Fig. 6/7 column.
fn sweep_main<FParams>(
    cfg: &ExperimentConfig,
    ids: [&str; 3],
    x_label: &str,
    xs: &[f64],
    mut make_instance: FParams,
) -> Report
where
    FParams: FnMut(f64, u64) -> Instance,
{
    let mut report = Report::new();
    for &x in xs {
        for algo in Algorithm::ALL {
            let mut dist = 0.0;
            let mut secs = 0.0;
            let mut mem_mb = 0.0;
            for rep in 0..cfg.repetitions {
                let instance = make_instance(x, rep);
                let pc = cfg.pipeline(instance_epsilon(&instance, cfg), rep);
                let (result, peak) = measure_peak(|| run(algo, &instance, &pc, rep));
                dist += result.metrics.total_distance;
                secs += result.metrics.assign_time.as_secs_f64();
                mem_mb += peak as f64 / (1024.0 * 1024.0);
            }
            let r = cfg.repetitions as f64;
            report.push(
                ids[0],
                x_label,
                x,
                algo.label(),
                "total_distance",
                dist / r,
                cfg.repetitions as u32,
            );
            report.push(
                ids[1],
                x_label,
                x,
                algo.label(),
                "running_time_s",
                secs / r,
                cfg.repetitions as u32,
            );
            report.push(
                ids[2],
                x_label,
                x,
                algo.label(),
                "memory_mb",
                mem_mb / r,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

// Epsilon riding along on the instance: sweeps that vary ε stash it in a
// thread-local; all other sweeps use the default.
std::thread_local! {
    static EPSILON_OVERRIDE: std::cell::Cell<Option<f64>> = const { std::cell::Cell::new(None) };
}

fn with_epsilon<T>(eps: f64, f: impl FnOnce() -> T) -> T {
    EPSILON_OVERRIDE.with(|c| c.set(Some(eps)));
    let out = f();
    EPSILON_OVERRIDE.with(|c| c.set(None));
    out
}

fn instance_epsilon(_instance: &Instance, _cfg: &ExperimentConfig) -> f64 {
    EPSILON_OVERRIDE
        .with(|c| c.get())
        .unwrap_or(SyntheticParams::default().epsilon)
}

/// Fig. 6, columns 1–4: varying |T|, |W|, µ and σ on synthetic data.
pub fn fig6(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let gen = |params: SyntheticParams, cfg: &ExperimentConfig, rep: u64| {
        synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0x6A))
    };

    // Column 1: |T|.
    let xs: Vec<f64> = SyntheticParams::TASK_COUNTS
        .iter()
        .map(|&t| cfg.scale_count(t) as f64)
        .collect();
    report.extend(sweep_main(
        cfg,
        ["fig6a", "fig6e", "fig6i"],
        "|T|",
        &xs,
        |x, rep| {
            let params = SyntheticParams {
                num_tasks: x as usize,
                num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
                ..SyntheticParams::default()
            };
            gen(params, cfg, rep)
        },
    ));

    // Column 2: |W|.
    let xs: Vec<f64> = SyntheticParams::WORKER_COUNTS
        .iter()
        .map(|&w| cfg.scale_count(w) as f64)
        .collect();
    report.extend(sweep_main(
        cfg,
        ["fig6b", "fig6f", "fig6j"],
        "|W|",
        &xs,
        |x, rep| {
            let params = SyntheticParams {
                num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
                num_workers: x as usize,
                ..SyntheticParams::default()
            };
            gen(params, cfg, rep)
        },
    ));

    // Column 3: µ.
    report.extend(sweep_main(
        cfg,
        ["fig6c", "fig6g", "fig6k"],
        "mu",
        &SyntheticParams::MUS,
        |x, rep| {
            let params = SyntheticParams {
                num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
                num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
                mu: x,
                ..SyntheticParams::default()
            };
            gen(params, cfg, rep)
        },
    ));

    // Column 4: σ.
    report.extend(sweep_main(
        cfg,
        ["fig6d", "fig6h", "fig6l"],
        "sigma",
        &SyntheticParams::SIGMAS,
        |x, rep| {
            let params = SyntheticParams {
                num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
                num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
                sigma: x,
                ..SyntheticParams::default()
            };
            gen(params, cfg, rep)
        },
    ));

    report
}

/// Fig. 7, column 1: varying ε on synthetic data.
pub fn fig7_eps(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    for &eps in &SyntheticParams::EPSILONS {
        let partial = with_epsilon(eps, || {
            sweep_main(
                cfg,
                ["fig7a", "fig7e", "fig7i"],
                "epsilon",
                &[eps],
                |_, rep| {
                    let params = SyntheticParams {
                        num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
                        num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
                        epsilon: eps,
                        ..SyntheticParams::default()
                    };
                    synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0x7E))
                },
            )
        });
        report.extend(partial);
    }
    report
}

/// Fig. 7, column 2: scalability (|T| = |W| up to 10⁵).
pub fn fig7_scale(cfg: &ExperimentConfig) -> Report {
    let xs: Vec<f64> = SyntheticParams::SCALABILITY
        .iter()
        .map(|&n| cfg.scale_count(n) as f64)
        .collect();
    sweep_main(
        cfg,
        ["fig7b", "fig7f", "fig7j"],
        "|T|=|W|",
        &xs,
        |x, rep| {
            let params = SyntheticParams {
                num_tasks: x as usize,
                num_workers: x as usize,
                ..SyntheticParams::default()
            };
            synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0x5C))
        },
    )
}

/// Fig. 7, columns 3–4: the Chengdu-like real workload, varying |W| and ε.
///
/// Repetitions iterate over simulated days (the paper averages 30 days).
pub fn fig7_real(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let city = chengdu::CityModel::generate(cfg.seed);
    let days = if cfg.quick { 2 } else { cfg.repetitions.max(3) } as usize;

    // Column 3: |W| sweep at default ε.
    for &w in &RealParams::WORKER_COUNTS {
        let w_scaled = cfg.scale_count(w);
        let partial = sweep_main(
            cfg,
            ["fig7c", "fig7g", "fig7k"],
            "|W|",
            &[w_scaled as f64],
            |_, rep| real_day_instance(&city, rep as usize % days, w_scaled, cfg),
        );
        report.extend(partial);
    }

    // Column 4: ε sweep at default |W|.
    let w_default = cfg.scale_count(RealParams::default().num_workers);
    for &eps in &RealParams::EPSILONS {
        let partial = with_epsilon(eps, || {
            sweep_main(
                cfg,
                ["fig7d", "fig7h", "fig7l"],
                "epsilon",
                &[eps],
                |_, rep| real_day_instance(&city, rep as usize % days, w_default, cfg),
            )
        });
        report.extend(partial);
    }
    report
}

fn real_day_instance(
    city: &chengdu::CityModel,
    day: usize,
    num_workers: usize,
    cfg: &ExperimentConfig,
) -> Instance {
    let mut inst =
        chengdu::generate_day(city, day, num_workers, cfg.seed).scaled(1.0 / REAL_UNIT_METERS);
    if cfg.quick {
        inst.tasks.truncate(cfg.scale_count(inst.tasks.len()));
    }
    inst
}

/// Case-study runner shared by `fig8_*`: returns (matching size, seconds).
fn case_study_point(
    cfg: &ExperimentConfig,
    instance: &Instance,
    algo: CaseStudyAlgorithm,
    eps: f64,
    rep: u64,
) -> (f64, f64) {
    match algo {
        CaseStudyAlgorithm::Tbf => {
            let server = Server::new(
                instance.region,
                cfg.grid_side,
                cfg.seed ^ rep.wrapping_mul(0x9E37_79B9),
            );
            let r = run_case_study(algo, instance, &server, eps, cfg.seed.wrapping_add(rep));
            (r.matching_size as f64, r.assign_time.as_secs_f64())
        }
        CaseStudyAlgorithm::Prob => {
            // Table-accelerated Prob (identical decisions up to interpolation
            // error, O(1) per probability query).
            let radii = instance.radii.as_ref().expect("case study needs radii");
            let epsilon = Epsilon::new(eps);
            let mut rng = seeded_rng(cfg.seed.wrapping_add(rep), 0xCA5E);
            let laplace = PlanarLaplace::new(epsilon);
            let workers: Vec<_> = instance
                .workers
                .iter()
                .map(|w| laplace.obfuscate(w, &mut rng))
                .collect();
            let tasks: Vec<_> = instance
                .tasks
                .iter()
                .map(|t| laplace.obfuscate(t, &mut rng))
                .collect();
            let max_radius = radii.iter().fold(0.0f64, |a, &b| a.max(b));
            let table = ReachTable::with_defaults(
                epsilon,
                instance.region.diameter() + 8.0 / eps,
                max_radius,
                cfg.seed,
            );
            let mut matcher = ProbMatcher::new(workers, radii.clone(), table, DEFAULT_THRESHOLD);
            // lint: allow(DET-TIME) — feeds the figure's running-time axis,
            // which is measured, not golden-checked.
            let start = Instant::now();
            let mut matched = 0usize;
            for (t_idx, t) in tasks.iter().enumerate() {
                if let Some(w_idx) = matcher.assign(t) {
                    if instance.tasks[t_idx].dist(&instance.workers[w_idx]) <= radii[w_idx] {
                        matched += 1;
                    }
                }
            }
            (matched as f64, start.elapsed().as_secs_f64())
        }
    }
}

fn sweep_case_study<FInst>(
    cfg: &ExperimentConfig,
    ids: [&str; 2],
    x_label: &str,
    xs: &[f64],
    eps_of: impl Fn(f64) -> f64,
    mut make_instance: FInst,
) -> Report
where
    FInst: FnMut(f64, u64) -> Instance,
{
    let mut report = Report::new();
    for &x in xs {
        for algo in CaseStudyAlgorithm::ALL {
            let mut size = 0.0;
            let mut secs = 0.0;
            for rep in 0..cfg.repetitions {
                let instance = make_instance(x, rep);
                let (s, t) = case_study_point(cfg, &instance, algo, eps_of(x), rep);
                size += s;
                secs += t;
            }
            let r = cfg.repetitions as f64;
            report.push(
                ids[0],
                x_label,
                x,
                algo.label(),
                "matching_size",
                size / r,
                cfg.repetitions as u32,
            );
            report.push(
                ids[1],
                x_label,
                x,
                algo.label(),
                "running_time_s",
                secs / r,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

/// Fig. 8, columns 1–2: case study on synthetic data (vary |W|, vary ε).
pub fn fig8_syn(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let default_eps = SyntheticParams::default().epsilon;
    let gen = |tasks: usize, workers: usize, rep: u64, cfg: &ExperimentConfig| {
        let params = SyntheticParams {
            num_tasks: tasks,
            num_workers: workers,
            ..SyntheticParams::default()
        };
        synthetic::generate_with_radii(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0x8A))
    };

    let xs: Vec<f64> = SyntheticParams::WORKER_COUNTS
        .iter()
        .map(|&w| cfg.scale_count(w) as f64)
        .collect();
    report.extend(sweep_case_study(
        cfg,
        ["fig8a", "fig8e"],
        "|W|",
        &xs,
        |_| default_eps,
        |x, rep| {
            gen(
                cfg.scale_count(SyntheticParams::default().num_tasks),
                x as usize,
                rep,
                cfg,
            )
        },
    ));

    report.extend(sweep_case_study(
        cfg,
        ["fig8b", "fig8f"],
        "epsilon",
        &SyntheticParams::EPSILONS,
        |x| x,
        |_, rep| {
            gen(
                cfg.scale_count(SyntheticParams::default().num_tasks),
                cfg.scale_count(SyntheticParams::default().num_workers),
                rep,
                cfg,
            )
        },
    ));
    report
}

/// Fig. 8, columns 3–4: case study on the Chengdu-like workload.
pub fn fig8_real(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let city = chengdu::CityModel::generate(cfg.seed);
    let days = if cfg.quick { 2 } else { cfg.repetitions.max(3) } as usize;
    let default_eps = RealParams::default().epsilon;
    let gen = |workers: usize, rep: u64, cfg: &ExperimentConfig| {
        let mut inst =
            chengdu::generate_day_with_radii(&city, rep as usize % days, workers, cfg.seed)
                .scaled(1.0 / REAL_UNIT_METERS);
        if cfg.quick {
            inst.tasks.truncate(cfg.scale_count(inst.tasks.len()));
        }
        inst
    };

    let xs: Vec<f64> = RealParams::WORKER_COUNTS
        .iter()
        .map(|&w| cfg.scale_count(w) as f64)
        .collect();
    report.extend(sweep_case_study(
        cfg,
        ["fig8c", "fig8g"],
        "|W|",
        &xs,
        |_| default_eps,
        |x, rep| gen(x as usize, rep, cfg),
    ));

    let w_default = cfg.scale_count(RealParams::default().num_workers);
    report.extend(sweep_case_study(
        cfg,
        ["fig8d", "fig8h"],
        "epsilon",
        &RealParams::EPSILONS,
        |x| x,
        |_, rep| gen(w_default, rep, cfg),
    ));
    report
}

/// Table I: the weights and per-leaf probabilities of the worked example
/// (ε = 0.1 on the Example 1 tree), rendered as the paper prints them.
pub fn table1() -> String {
    use pombm_geom::{Point, PointSet};
    use pombm_hst::{FixedDraw, Hst, HstParams};
    let points = PointSet::new(vec![
        Point::new(1.0, 1.0),
        Point::new(2.0, 3.0),
        Point::new(5.0, 3.0),
        Point::new(4.0, 4.0),
    ]);
    let mut rng = seeded_rng(0, 0);
    let hst = Hst::build_with(
        &points,
        HstParams {
            fixed: Some(FixedDraw {
                beta: 0.5,
                permutation: vec![0, 1, 2, 3],
            }),
            branching: None,
        },
        &mut rng,
    );
    let mech = HstMechanism::new(&hst, Epsilon::new(0.1));
    let mut out = String::from(
        "Table I (eps = 0.1, Example 1 tree)\nlevel  |L_i(o1)|        wt_i   probability\n",
    );
    for level in 0..=hst.depth() {
        let count = if level == 0 {
            1
        } else {
            hst.ctx().sibling_leaves_at(level)
        };
        out.push_str(&format!(
            "{level:>5}  {count:>9}  {:>10.3}  {:>12.3}\n",
            mech.table().wt(level),
            mech.table().leaf_probability(level),
        ));
    }
    out
}

/// Empirical competitive ratios (extension experiment `ratio`): TBF and the
/// baselines against the exact offline optimum, swept over ε.
pub fn ratio(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    // OPT is cubic-ish; keep instances modest.
    let (tasks, workers) = if cfg.quick { (40, 60) } else { (200, 300) };
    for &eps in &SyntheticParams::EPSILONS {
        let params = SyntheticParams {
            num_tasks: tasks,
            num_workers: workers,
            epsilon: eps,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(cfg.seed, 0x0C));
        for algo in Algorithm::ALL {
            let pc = cfg.pipeline(eps, 0);
            let r =
                pombm::empirical_competitive_ratio(algo.spec(), &instance, &pc, cfg.repetitions)
                    .expect("ratio experiment instances are non-degenerate")
                    .ratio;
            report.push(
                "ratio",
                "epsilon",
                eps,
                algo.label(),
                "competitive_ratio",
                r,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

/// Ablation `gridsweep`: TBF total distance and server setup cost as a
/// function of the predefined-grid resolution (N = side²). This is the knob
/// behind the loose-ε crossovers recorded in EXPERIMENTS.md: TBF's
/// total-distance floor is the snapping error, which shrinks with N while
/// the one-time construction cost grows O(N²·D).
pub fn grid_sweep(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let params = SyntheticParams {
        num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
        num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
        ..SyntheticParams::default()
    };
    for side in [16usize, 32, 48, 64, 96] {
        let mut dist = 0.0;
        let mut setup = 0.0;
        for rep in 0..cfg.repetitions {
            let instance =
                synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0x9D));
            let pc = PipelineConfig {
                grid_side: side,
                ..cfg.pipeline(SyntheticParams::default().epsilon, rep)
            };
            let result = run(Algorithm::Tbf, &instance, &pc, rep);
            dist += result.metrics.total_distance;
            setup += result.metrics.setup_time.as_secs_f64();
        }
        let r = cfg.repetitions as f64;
        let n = (side * side) as f64;
        report.push(
            "gridsweep",
            "N",
            n,
            "TBF",
            "total_distance",
            dist / r,
            cfg.repetitions as u32,
        );
        report.push(
            "gridsweep",
            "N",
            n,
            "TBF",
            "setup_time_s",
            setup / r,
            cfg.repetitions as u32,
        );
    }
    report
}

/// Ablation: tree distance of the obfuscated leaf vs the exact leaf as a
/// function of ε — the empirical counterpart of Lemmas 1–2's distortion
/// window.
pub fn distortion(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let server = Server::new(pombm_geom::Rect::square(200.0), 32, cfg.seed);
    let mut rng = seeded_rng(cfg.seed, 0xD15);
    let samples = if cfg.quick { 200 } else { 2000 };
    for &eps in &SyntheticParams::EPSILONS {
        let mech = HstMechanism::new(server.hst(), Epsilon::new(eps));
        let mut total = 0.0;
        for _ in 0..samples {
            let p = pombm_geom::Point::new(
                rand::Rng::gen::<f64>(&mut rng) * 200.0,
                rand::Rng::gen::<f64>(&mut rng) * 200.0,
            );
            let x = server.snap(&p);
            let z = mech.obfuscate(server.hst(), x, &mut rng);
            total += server.hst().tree_dist(x, z);
        }
        report.push(
            "distortion",
            "epsilon",
            eps,
            "TBF",
            "mean_displacement",
            total / samples as f64,
            samples as u32,
        );
    }
    report
}

/// Ablation `ablatemech`: mechanism head-to-head under the *same* matcher.
///
/// TBF (HST mechanism), Exp-HG (exponential mechanism over the same grid)
/// and Lap-HG (planar Laplace snapped to the grid) all feed HST-greedy, and
/// the Random floor calibrates the headroom. Separates "discretize to the
/// predefined points" from "obfuscate *on the tree*" — the paper's design
/// choice that Sec. III motivates but never isolates.
pub fn ablate_mech(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let algos = [
        Algorithm::Tbf,
        Algorithm::ExpHg,
        Algorithm::LapHg,
        Algorithm::RandomFloor,
    ];
    for &eps in &SyntheticParams::EPSILONS {
        let params = SyntheticParams {
            num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
            num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
            epsilon: eps,
            ..SyntheticParams::default()
        };
        for algo in algos {
            let mut dist = 0.0;
            for rep in 0..cfg.repetitions {
                let instance =
                    synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xAB));
                let pc = cfg.pipeline(eps, rep);
                dist += run(algo, &instance, &pc, rep).metrics.total_distance;
            }
            report.push(
                "ablatemech",
                "epsilon",
                eps,
                algo.label(),
                "total_distance",
                dist / cfg.repetitions as f64,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

/// Ablation `ablatealg`: online assignment rules under the *same* TBF
/// mechanism — greedy (Alg. 4), randomized greedy (Meyerson et al.) and
/// chain reassignment (Bansal et al.) — total distance and assignment time.
pub fn ablate_alg(cfg: &ExperimentConfig) -> Report {
    let mut report = Report::new();
    let algos = [Algorithm::Tbf, Algorithm::TbfRand, Algorithm::TbfChain];
    for &eps in &SyntheticParams::EPSILONS {
        let params = SyntheticParams {
            num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
            num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
            epsilon: eps,
            ..SyntheticParams::default()
        };
        for algo in algos {
            let mut dist = 0.0;
            let mut secs = 0.0;
            for rep in 0..cfg.repetitions {
                let instance =
                    synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xA1));
                let pc = cfg.pipeline(eps, rep);
                let r = run(algo, &instance, &pc, rep);
                dist += r.metrics.total_distance;
                secs += r.metrics.assign_time.as_secs_f64();
            }
            let reps = cfg.repetitions as f64;
            report.push(
                "ablatealg",
                "epsilon",
                eps,
                algo.label(),
                "total_distance",
                dist / reps,
                cfg.repetitions as u32,
            );
            report.push(
                "ablatealg",
                "epsilon",
                eps,
                algo.label(),
                "running_time_s",
                secs / reps,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

/// Extension `epochs`: multi-epoch deployment under a lifetime budget.
///
/// Per-epoch total distance, fresh-report fraction and mean report
/// staleness as worker budgets exhaust (see `pombm::epochs`).
pub fn epochs(cfg: &ExperimentConfig) -> Report {
    use pombm::EpochConfig;
    let mut report = Report::new();
    let num_workers = if cfg.quick { 150 } else { 1000 };
    let epoch_cfg = EpochConfig {
        num_epochs: 12,
        lifetime_epsilon: 2.4, // 4 fresh reports at the default per-epoch ε
        epoch_epsilon: SyntheticParams::default().epsilon,
        tasks_per_epoch: if cfg.quick { 60 } else { 400 },
        grid_side: cfg.grid_side.min(32),
        seed: cfg.seed,
        ..EpochConfig::default()
    };
    // Average over repetitions (different seeds) per epoch index.
    let mut dist = vec![0.0f64; epoch_cfg.num_epochs];
    let mut stale = vec![0.0f64; epoch_cfg.num_epochs];
    let mut fresh = vec![0.0f64; epoch_cfg.num_epochs];
    for rep in 0..cfg.repetitions {
        let mut c = epoch_cfg;
        c.seed = cfg.seed.wrapping_add(rep.wrapping_mul(0xEAC7));
        let r = pombm::run_epochs(num_workers, &c);
        for m in &r.per_epoch {
            dist[m.epoch] += m.total_distance;
            stale[m.epoch] += m.avg_report_staleness;
            fresh[m.epoch] += m.fresh_reports as f64 / num_workers as f64;
        }
    }
    let reps = cfg.repetitions as f64;
    for e in 0..epoch_cfg.num_epochs {
        report.push(
            "epochs",
            "epoch",
            e as f64,
            "TBF",
            "total_distance",
            dist[e] / reps,
            cfg.repetitions as u32,
        );
        report.push(
            "epochs",
            "epoch",
            e as f64,
            "TBF",
            "avg_staleness",
            stale[e] / reps,
            cfg.repetitions as u32,
        );
        report.push(
            "epochs",
            "epoch",
            e as f64,
            "TBF",
            "fresh_fraction",
            fresh[e] / reps,
            cfg.repetitions as u32,
        );
    }
    report
}

/// Extension `dynamic`: shift-based fleets. Sweeps fleet coverage (mean
/// shift length / horizon) and reports assignment rate and mean per-task
/// distance (see `pombm::dynamic`).
pub fn dynamic(cfg: &ExperimentConfig) -> Report {
    use pombm::{run_dynamic, ArrivalProcess, DynamicConfig};
    use pombm_workload::shifts::ShiftPlan;
    let mut report = Report::new();
    let (tasks, workers) = if cfg.quick { (120, 240) } else { (1500, 3000) };
    let horizon = 1000.0;
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    let durations: [(f64, f64); 5] = [
        (25.0, 75.0),
        (100.0, 200.0),
        (300.0, 500.0),
        (600.0, 800.0),
        (900.0, 1000.0),
    ];
    for (lo, hi) in durations {
        let mut rate = 0.0;
        let mut avg_dist = 0.0;
        let mut coverage = 0.0;
        for rep in 0..cfg.repetitions {
            let instance =
                synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xDF));
            let times = ArrivalProcess::Uniform {
                window_secs: horizon * 0.99,
            }
            .timestamps(tasks, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xD0));
            let plan = ShiftPlan::uniform(
                workers,
                horizon,
                lo,
                hi,
                &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xD1),
            );
            let dyn_cfg = DynamicConfig {
                epsilon: SyntheticParams::default().epsilon,
                grid_side: cfg.grid_side.min(32),
                seed: cfg.seed.wrapping_add(rep),
            };
            let out = run_dynamic(&instance, &times, &plan, &dyn_cfg);
            rate += out.assignment_rate();
            avg_dist += if out.pairs.is_empty() {
                0.0
            } else {
                out.total_distance / out.pairs.len() as f64
            };
            coverage += plan.mean_coverage();
        }
        let reps = cfg.repetitions as f64;
        let x = (coverage / reps * 1000.0).round() / 1000.0;
        report.push(
            "dynamic",
            "coverage",
            x,
            "TBF",
            "assignment_rate",
            rate / reps,
            cfg.repetitions as u32,
        );
        report.push(
            "dynamic",
            "coverage",
            x,
            "TBF",
            "avg_task_distance",
            avg_dist / reps,
            cfg.repetitions as u32,
        );
    }
    report
}

/// Ablation `ablatetree`: the paper's randomized FRT construction (Alg. 1)
/// vs a deterministic quadtree, same mechanism and matcher. FRT's random
/// boundaries are what keep the *expected* stretch `O(log N)`; the
/// quadtree's fixed dyadic cuts leave boundary-straddling pairs with
/// `Θ(2^D)` tree distance, which this experiment surfaces as a total-
/// distance gap.
pub fn ablate_tree(cfg: &ExperimentConfig) -> Report {
    use pombm::{run_with_server, TreeConstruction};
    let mut report = Report::new();
    let params = SyntheticParams {
        num_tasks: cfg.scale_count(SyntheticParams::default().num_tasks),
        num_workers: cfg.scale_count(SyntheticParams::default().num_workers),
        ..SyntheticParams::default()
    };
    for &eps in &SyntheticParams::EPSILONS {
        for (label, construction) in [
            ("TBF-FRT", TreeConstruction::Frt),
            ("TBF-Quadtree", TreeConstruction::Quadtree),
        ] {
            let mut dist = 0.0;
            for rep in 0..cfg.repetitions {
                let instance =
                    synthetic::generate(&params, &mut seeded_rng(cfg.seed.wrapping_add(rep), 0xA7));
                let server = Server::with_construction(
                    instance.region,
                    cfg.grid_side,
                    cfg.seed ^ rep.wrapping_mul(0x9E37_79B9),
                    construction,
                );
                let pc = cfg.pipeline(eps, rep);
                let r = run_with_server(Algorithm::Tbf, &instance, &pc, Some(&server), rep);
                dist += r.metrics.total_distance;
            }
            report.push(
                "ablatetree",
                "epsilon",
                eps,
                label,
                "total_distance",
                dist / cfg.repetitions as f64,
                cfg.repetitions as u32,
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny config so every sweep finishes in test time.
    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            repetitions: 1,
            quick: true,
            seed: 1,
            grid_side: 16,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn table1_matches_paper_probabilities() {
        let t = table1();
        for expected in ["0.394", "0.264", "0.119", "0.024", "0.001"] {
            assert!(t.contains(expected), "Table I missing {expected}:\n{t}");
        }
    }

    #[test]
    fn distortion_decreases_with_epsilon() {
        let report = distortion(&tiny());
        let rows: Vec<f64> = report.rows.iter().map(|r| r.value).collect();
        assert_eq!(rows.len(), SyntheticParams::EPSILONS.len());
        assert!(
            rows.first().unwrap() > rows.last().unwrap(),
            "displacement should shrink as ε grows: {rows:?}"
        );
    }

    #[test]
    fn epochs_reports_all_metrics_per_epoch() {
        let report = epochs(&tiny());
        // 12 epochs × 3 metrics.
        assert_eq!(report.rows.len(), 36);
        assert!(report.rows.iter().all(|r| r.figure == "epochs"));
    }

    #[test]
    fn ablate_tree_produces_both_series() {
        let report = ablate_tree(&tiny());
        let labels: std::collections::HashSet<_> =
            report.rows.iter().map(|r| r.series.clone()).collect();
        assert!(labels.contains("TBF-FRT"));
        assert!(labels.contains("TBF-Quadtree"));
        assert_eq!(report.rows.len(), 2 * SyntheticParams::EPSILONS.len());
        assert!(report.rows.iter().all(|r| r.value > 0.0));
    }

    #[test]
    fn dynamic_assignment_rate_is_a_probability() {
        let report = dynamic(&tiny());
        for row in report.rows.iter().filter(|r| r.metric == "assignment_rate") {
            assert!((0.0..=1.0).contains(&row.value), "{row:?}");
        }
    }
}
