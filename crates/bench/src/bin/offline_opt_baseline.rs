//! Generates the checked-in `BENCH_PR4.json` baseline: single-shot
//! wall-clock of the Hungarian OPT solver family on the standard sweep
//! instances, plus the machine shape the numbers were recorded on.
//!
//! Unlike `benches/offline_opt.rs` (criterion, several iterations per
//! configuration) this runs every configuration once — the reference
//! solver at k = 8192 is expensive enough that a single pass is the
//! practical way to refresh the baseline:
//!
//! ```text
//! cargo run --release -p pombm_bench --bin offline_opt_baseline > BENCH_PR4.json
//! ```

use pombm::sweep::sweep_instance;
use pombm_matching::offline::OfflineOptimal;
use std::time::Instant;

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("sizes are integers"))
        .collect();
    let sizes = if sizes.is_empty() {
        vec![512, 2048, 8192]
    } else {
        sizes
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    println!("{{");
    println!("  \"bench\": \"offline_opt (Hungarian OPT, PR 4 hot-path overhaul)\",");
    println!("  \"instances\": \"sweep_instance(seed 11, k tasks x k workers)\",");
    println!(
        "  \"method\": \"best of 3 per configuration; single passes on shared VMs show \
         +/-20% run-to-run variance\","
    );
    println!(
        "  \"machine\": {{ \"cores\": {cores}, \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    println!("  \"timings_ms\": [");
    for (idx, &k) in sizes.iter().enumerate() {
        let instance = sweep_instance(11, k);
        let cost = |t: usize, w: usize| instance.tasks[t].dist(&instance.workers[w]);
        let best_of = |passes: usize, solve: &dyn Fn() -> pombm_matching::Matching| {
            let mut best_ms = f64::INFINITY;
            let mut result = None;
            for _ in 0..passes {
                // lint: allow(DET-TIME) — this binary's purpose is timing;
                // its output is a report, not a golden.
                let start = Instant::now();
                let m = solve();
                best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
                result = Some(m);
            }
            (result.expect("at least one pass"), best_ms)
        };

        // Three passes for every configuration: single passes on a shared
        // VM swing by +/-20%, which would swamp the speedup being
        // recorded. At k = 8192 the reference costs about a minute per
        // pass, so a full refresh is a coffee-length affair.
        let (reference, reference_ms) = best_of(3, &|| OfflineOptimal::solve_reference(k, k, cost));

        // The Euclidean entry point is what the ratio/sweep hot path uses.
        let (dense, dense_ms) = best_of(3, &|| {
            OfflineOptimal::solve_euclidean_with_threads(&instance.tasks, &instance.workers, 1)
        });
        let (auto, auto_ms) = best_of(3, &|| {
            OfflineOptimal::solve_euclidean_with_threads(&instance.tasks, &instance.workers, 0)
        });

        assert_eq!(reference.pairs, dense.pairs, "k = {k}: dense drifted");
        assert_eq!(reference.pairs, auto.pairs, "k = {k}: parallel drifted");

        let comma = if idx + 1 == sizes.len() { "" } else { "," };
        println!(
            "    {{ \"k\": {k}, \"reference_closure\": {reference_ms:.1}, \
             \"hungarian_threads_1\": {dense_ms:.1}, \"hungarian_threads_auto\": {auto_ms:.1}, \
             \"speedup_auto_vs_reference\": {:.2} }}{comma}",
            reference_ms / auto_ms
        );
    }
    println!("  ]");
    println!("}}");
}
