//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p pombm-bench --bin experiments -- <command> [flags]
//!
//! Commands:
//!   table1      Table I weights/probabilities of the worked example
//!   fig6        Fig. 6 (synthetic sweeps over |T|, |W|, mu, sigma)
//!   fig7eps     Fig. 7 column 1 (synthetic, vary epsilon)
//!   fig7scale   Fig. 7 column 2 (scalability, |T| = |W|)
//!   fig7real    Fig. 7 columns 3-4 (Chengdu-like trace)
//!   fig8syn     Fig. 8 columns 1-2 (case study, synthetic)
//!   fig8real    Fig. 8 columns 3-4 (case study, real)
//!   ratio       extension: empirical competitive ratio vs OPT
//!   distortion  extension: mean HST displacement vs epsilon
//!   gridsweep   extension: TBF distance floor vs predefined-point count N
//!   ablatemech  ablation: mechanisms head-to-head under the same matcher
//!   ablatealg   ablation: online assignment rules under the TBF mechanism
//!   epochs      extension: multi-epoch deployment under a lifetime budget
//!   dynamic     extension: shift-based fleets (assignment rate vs coverage)
//!   ablatetree  ablation: randomized FRT vs deterministic quadtree HST
//!   all         everything above
//!
//! Flags:
//!   --quick       ~10x smaller workloads (smoke run)
//!   --plot        also render each figure as an ASCII chart
//!   --reps N      repetitions per point (default 3; paper uses 10)
//!   --seed N      base seed (default 2020)
//!   --scan        paper-literal O(n*D) matcher scan instead of the index
//!   --paper-engines  --scan plus O(n) Euclidean scan (paper-faithful timing)
//!   --out DIR     output directory for CSV/JSON (default results/)
//! ```

use pombm_bench::figures::{self, ExperimentConfig};
use pombm_bench::Report;
use pombm_matching::hst_greedy::HstGreedyEngine;
use std::path::PathBuf;

/// Track peak allocations for the paper's memory-usage figures.
#[global_allocator]
static ALLOC: pombm_bench::CountingAllocator = pombm_bench::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: experiments <command> [--quick] [--reps N] [--seed N] [--scan] [--paper-engines] [--out DIR]");
        eprintln!("commands: table1 fig6 fig7eps fig7scale fig7real fig8syn fig8real ratio distortion gridsweep ablatemech ablatealg epochs dynamic ablatetree all");
        std::process::exit(2);
    }

    let mut cfg = ExperimentConfig::default();
    let mut plot = false;
    let mut out_dir = PathBuf::from("results");
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--plot" => plot = true,
            "--scan" => cfg.engine = HstGreedyEngine::Scan,
            // Paper-literal engines: O(n*D) HST scan (Alg. 4 as written) and
            // O(n) Euclidean scan, restoring the paper's running-time
            // ordering (Lap-GR fastest).
            "--paper-engines" => {
                cfg.engine = HstGreedyEngine::Scan;
                cfg.euclid_cells = 0;
            }
            "--reps" => {
                cfg.repetitions = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"));
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--out" => {
                out_dir = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            cmd if !cmd.starts_with('-') => commands.push(cmd.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if commands.is_empty() {
        die("no command given");
    }

    let mut report = Report::new();
    for cmd in &commands {
        match cmd.as_str() {
            "table1" => {
                println!("{}", figures::table1());
            }
            "fig6" => report.extend(timed("fig6", || figures::fig6(&cfg))),
            "fig7eps" => report.extend(timed("fig7eps", || figures::fig7_eps(&cfg))),
            "fig7scale" => report.extend(timed("fig7scale", || figures::fig7_scale(&cfg))),
            "fig7real" => report.extend(timed("fig7real", || figures::fig7_real(&cfg))),
            "fig8syn" => report.extend(timed("fig8syn", || figures::fig8_syn(&cfg))),
            "fig8real" => report.extend(timed("fig8real", || figures::fig8_real(&cfg))),
            "ratio" => report.extend(timed("ratio", || figures::ratio(&cfg))),
            "distortion" => report.extend(timed("distortion", || figures::distortion(&cfg))),
            "gridsweep" => report.extend(timed("gridsweep", || figures::grid_sweep(&cfg))),
            "ablatemech" => report.extend(timed("ablatemech", || figures::ablate_mech(&cfg))),
            "ablatealg" => report.extend(timed("ablatealg", || figures::ablate_alg(&cfg))),
            "epochs" => report.extend(timed("epochs", || figures::epochs(&cfg))),
            "dynamic" => report.extend(timed("dynamic", || figures::dynamic(&cfg))),
            "ablatetree" => report.extend(timed("ablatetree", || figures::ablate_tree(&cfg))),
            "all" => {
                println!("{}", figures::table1());
                report.extend(timed("fig6", || figures::fig6(&cfg)));
                report.extend(timed("fig7eps", || figures::fig7_eps(&cfg)));
                report.extend(timed("fig7scale", || figures::fig7_scale(&cfg)));
                report.extend(timed("fig7real", || figures::fig7_real(&cfg)));
                report.extend(timed("fig8syn", || figures::fig8_syn(&cfg)));
                report.extend(timed("fig8real", || figures::fig8_real(&cfg)));
                report.extend(timed("ratio", || figures::ratio(&cfg)));
                report.extend(timed("distortion", || figures::distortion(&cfg)));
                report.extend(timed("gridsweep", || figures::grid_sweep(&cfg)));
                report.extend(timed("ablatemech", || figures::ablate_mech(&cfg)));
                report.extend(timed("ablatealg", || figures::ablate_alg(&cfg)));
                report.extend(timed("epochs", || figures::epochs(&cfg)));
                report.extend(timed("dynamic", || figures::dynamic(&cfg)));
                report.extend(timed("ablatetree", || figures::ablate_tree(&cfg)));
            }
            other => die(&format!("unknown command {other}")),
        }
    }

    // Print every produced figure as a paper-style table (and, with
    // --plot, as an ASCII chart).
    for figure in report.figures() {
        for metric in report.metrics(&figure) {
            println!("{}", report.render_figure(&figure, &metric));
            if plot {
                if let Some(chart) = pombm_bench::render_chart(&report, &figure, &metric, 60) {
                    println!("{chart}");
                }
            }
        }
    }

    if !report.rows.is_empty() {
        let csv = out_dir.join("experiments.csv");
        let json = out_dir.join("experiments.json");
        report.write_csv(&csv).expect("write CSV");
        report.write_json(&json).expect("write JSON");
        println!(
            "wrote {} rows to {} and {}",
            report.rows.len(),
            csv.display(),
            json.display()
        );
    }
}

fn timed(name: &str, f: impl FnOnce() -> Report) -> Report {
    eprintln!("running {name}...");
    // lint: allow(DET-TIME) — progress logging on stderr; never serialized.
    let start = std::time::Instant::now();
    let r = f();
    eprintln!("{name} finished in {:.1}s", start.elapsed().as_secs_f64());
    r
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
