//! ASCII line charts for experiment reports.
//!
//! The paper presents its evaluation as line plots (Figs. 6–8). The
//! experiments binary prints numeric tables by default; with `--plot` it
//! also renders each figure as a terminal chart so trends (who wins, where
//! curves cross) are visible without leaving the shell.

use crate::report::Report;
use std::fmt::Write as _;

/// Glyphs assigned to series in first-seen order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders one `(figure, metric)` slice of a [`Report`] as an ASCII chart.
///
/// The x axis spans the figure's swept parameter values (evenly spaced by
/// rank, matching how the paper's plots space categorical sweeps); the y
/// axis is linear from 0 to the maximum observed value. Returns `None` if
/// the slice has no rows.
pub fn render_chart(report: &Report, figure: &str, metric: &str, width: usize) -> Option<String> {
    let rows: Vec<_> = report
        .rows
        .iter()
        .filter(|r| r.figure == figure && r.metric == metric)
        .collect();
    if rows.is_empty() {
        return None;
    }

    // Distinct sorted x values and first-seen series order.
    let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup();
    let mut series: Vec<String> = Vec::new();
    for r in &rows {
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
    }

    let y_max = rows
        .iter()
        .map(|r| r.value)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let height = 12usize;
    let width = width.max(2 * xs.len()).max(20);

    // Canvas of (height + 1) rows; row 0 is the top.
    let mut canvas = vec![vec![' '; width]; height + 1];
    let x_pos = |rank: usize| -> usize {
        if xs.len() == 1 {
            width / 2
        } else {
            rank * (width - 1) / (xs.len() - 1)
        }
    };
    for (si, name) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for r in rows.iter().filter(|r| &r.series == name) {
            let rank = xs
                .iter()
                .position(|&x| (x - r.x).abs() <= f64::EPSILON * x.abs().max(1.0))
                .expect("x present");
            let row = height - ((r.value / y_max) * height as f64).round() as usize;
            let col = x_pos(rank);
            // Later series overwrite earlier at collisions; the legend
            // disambiguates.
            canvas[row][col] = mark;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{figure} [{metric}]  (y max = {y_max:.3})");
    for (i, line) in canvas.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>10.1}")
        } else if i == height {
            format!("{:>10.1}", 0.0)
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label} |{}", line.iter().collect::<String>());
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(10), "-".repeat(width));
    // X tick labels, left and right ends only (terse but unambiguous).
    let _ = writeln!(
        out,
        "{}  {:<.6} .. {:<.6}",
        " ".repeat(10),
        xs[0],
        xs[xs.len() - 1]
    );
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, name)| format!("{} {name}", MARKS[si % MARKS.len()]))
        .collect();
    let _ = writeln!(out, "{}  {}", " ".repeat(10), legend.join("   "));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new();
        for (i, &x) in [1.0, 2.0, 3.0].iter().enumerate() {
            r.push("figX", "eps", x, "TBF", "dist", 10.0 * (i + 1) as f64, 1);
            r.push("figX", "eps", x, "Lap-GR", "dist", 40.0, 1);
        }
        r
    }

    #[test]
    fn chart_contains_series_marks_and_legend() {
        let chart = render_chart(&sample_report(), "figX", "dist", 40).unwrap();
        assert!(chart.contains('*'), "{chart}");
        assert!(chart.contains('o'), "{chart}");
        assert!(chart.contains("* TBF"));
        assert!(chart.contains("o Lap-GR"));
        assert!(chart.contains("y max = 40.000"));
    }

    #[test]
    fn missing_figure_returns_none() {
        assert!(render_chart(&sample_report(), "nope", "dist", 40).is_none());
        assert!(render_chart(&sample_report(), "figX", "nope", 40).is_none());
    }

    #[test]
    fn single_point_series_renders() {
        let mut r = Report::new();
        r.push("f", "x", 5.0, "only", "m", 1.0, 1);
        let chart = render_chart(&r, "f", "m", 30).unwrap();
        assert!(chart.contains('*'));
    }

    #[test]
    fn higher_values_plot_higher() {
        let chart = render_chart(&sample_report(), "figX", "dist", 40).unwrap();
        // The flat 40-line ('o') must appear above the rising 10..30 line's
        // first point ('*'): find the first canvas row containing each.
        let rows: Vec<&str> = chart.lines().collect();
        let first_o = rows.iter().position(|l| l.contains('o')).unwrap();
        let first_star = rows.iter().position(|l| l.contains('*')).unwrap();
        assert!(first_o < first_star, "{chart}");
    }
}
