//! A counting global allocator for the memory-usage metric.
//!
//! The paper reports "memory usage (MB)" per algorithm (Figs. 6i–l, 7i–l).
//! This wrapper around the system allocator tracks live and peak bytes so
//! the experiments binary can report the peak allocation attributable to one
//! pipeline run (reset the peak, run, read the peak).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bytes currently allocated through [`CountingAllocator`].
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System-allocator wrapper that maintains live/peak byte counters.
///
/// Register it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: pombm_bench::CountingAllocator = pombm_bench::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: delegates directly to `System`; the counter updates do not
// allocate and are async-signal-safe atomics.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: contract — same as `GlobalAlloc::alloc` (nonzero layout).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is forwarded unchanged from our own contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: contract — `ptr` came from this allocator with `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: our caller guarantees `ptr`/`layout` match an earlier
        // `alloc`, which we delegated to `System`.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: contract — same as `GlobalAlloc::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged from
        // our own contract, and the underlying blocks live in `System`.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Bytes currently live.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live bytes since the last reset.
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live count and returns the previous peak.
pub fn reset_peak() -> usize {
    PEAK.swap(LIVE.load(Ordering::Relaxed), Ordering::Relaxed)
}

/// Runs `f` and returns `(f(), peak-over-baseline bytes during the call)`.
///
/// Only meaningful in binaries that registered [`CountingAllocator`];
/// elsewhere the byte count is 0.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    // The allocator is not registered in the test harness (registering a
    // global allocator in a lib would leak into every dependent), so only
    // the counter plumbing is testable here.
    use super::*;

    #[test]
    fn counters_are_readable() {
        // Not registered in the test harness: both counters are stable.
        let _ = (peak_bytes(), live_bytes());
    }

    #[test]
    fn measure_peak_without_registration_is_zero() {
        let (value, bytes) = measure_peak(|| vec![0u8; 1 << 16].len());
        assert_eq!(value, 1 << 16);
        // Not registered in tests: counters never move.
        assert_eq!(bytes, 0);
    }

    #[test]
    fn reset_peak_returns_previous() {
        let before = peak_bytes();
        let ret = reset_peak();
        assert_eq!(ret, before);
    }
}
