//! Experiment harness for the POMBM reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Sec. IV). The `experiments` binary prints the same series the paper
//! plots and writes CSV files; Criterion benches in `benches/` cover the
//! micro-level claims (mechanism latency, construction cost, matcher
//! engines). See EXPERIMENTS.md at the repository root for the recorded
//! paper-vs-measured comparison.

pub mod alloc;
pub mod figures;
pub mod plot;
pub mod report;

pub use alloc::CountingAllocator;
pub use plot::render_chart;
pub use report::{Report, Row};
