//! Result rows, console tables and CSV output.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;

/// One measured point of one series of one figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Figure/experiment id, e.g. `fig6a`.
    pub figure: String,
    /// Name of the swept parameter, e.g. `|T|` or `epsilon`.
    pub x_label: String,
    /// Value of the swept parameter.
    pub x: f64,
    /// Series (algorithm) label, e.g. `TBF`.
    pub series: String,
    /// Metric name, e.g. `total_distance`.
    pub metric: String,
    /// Averaged metric value.
    pub value: f64,
    /// Number of repetitions averaged.
    pub repetitions: u32,
}

/// A collection of rows with pretty-printing and CSV export.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    /// All measured rows, in insertion order.
    pub rows: Vec<Row>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a row.
    // One argument per report column; a row struct would just rename them.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        figure: &str,
        x_label: &str,
        x: f64,
        series: &str,
        metric: &str,
        value: f64,
        repetitions: u32,
    ) {
        self.rows.push(Row {
            figure: figure.into(),
            x_label: x_label.into(),
            x,
            series: series.into(),
            metric: metric.into(),
            value,
            repetitions,
        });
    }

    /// Merges another report into this one.
    pub fn extend(&mut self, other: Report) {
        self.rows.extend(other.rows);
    }

    /// Renders one figure's rows as the paper-style table: one line per
    /// x-value, one column per series.
    pub fn render_figure(&self, figure: &str, metric: &str) -> String {
        let rows: Vec<&Row> = self
            .rows
            .iter()
            .filter(|r| r.figure == figure && r.metric == metric)
            .collect();
        if rows.is_empty() {
            return format!("{figure} [{metric}]: no data\n");
        }
        let x_label = &rows[0].x_label;
        let series: Vec<String> = {
            let mut seen = BTreeSet::new();
            rows.iter()
                .filter(|r| seen.insert(r.series.clone()))
                .map(|r| r.series.clone())
                .collect()
        };
        let mut xs: Vec<f64> = rows.iter().map(|r| r.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();

        let mut out = format!("== {figure} [{metric}] ==\n{x_label:>12}");
        for s in &series {
            out.push_str(&format!(" {s:>14}"));
        }
        out.push('\n');
        for &x in &xs {
            out.push_str(&format!("{x:>12}"));
            for s in &series {
                let v = rows
                    .iter()
                    .find(|r| r.x == x && &r.series == s)
                    .map(|r| r.value);
                match v {
                    Some(v) => out.push_str(&format!(" {v:>14.3}")),
                    None => out.push_str(&format!(" {:>14}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes all rows as CSV to `path`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "figure,x_label,x,series,metric,value,repetitions")?;
        for r in &self.rows {
            writeln!(
                f,
                "{},{},{},{},{},{},{}",
                r.figure, r.x_label, r.x, r.series, r.metric, r.value, r.repetitions
            )?;
        }
        Ok(())
    }

    /// Writes all rows as JSON to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, serde_json::to_string_pretty(&self).unwrap())
    }

    /// Distinct figure ids, in first-appearance order.
    pub fn figures(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        self.rows
            .iter()
            .filter(|r| seen.insert(r.figure.clone()))
            .map(|r| r.figure.clone())
            .collect()
    }

    /// Distinct metric names for a figure.
    pub fn metrics(&self, figure: &str) -> Vec<String> {
        let mut seen = BTreeSet::new();
        self.rows
            .iter()
            .filter(|r| r.figure == figure)
            .filter(|r| seen.insert(r.metric.clone()))
            .map(|r| r.metric.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new();
        for (x, tbf, lap) in [(1000.0, 10.0, 30.0), (2000.0, 20.0, 60.0)] {
            r.push("fig6a", "|T|", x, "TBF", "total_distance", tbf, 3);
            r.push("fig6a", "|T|", x, "Lap-GR", "total_distance", lap, 3);
        }
        r
    }

    #[test]
    fn render_contains_all_series_and_xs() {
        let table = sample().render_figure("fig6a", "total_distance");
        assert!(table.contains("TBF"));
        assert!(table.contains("Lap-GR"));
        assert!(table.contains("1000"));
        assert!(table.contains("2000"));
        assert!(table.contains("60.000"));
    }

    #[test]
    fn render_missing_figure_is_graceful() {
        let table = sample().render_figure("fig9z", "total_distance");
        assert!(table.contains("no data"));
    }

    #[test]
    fn csv_roundtrip_size() {
        let dir = std::env::temp_dir().join("pombm_report_test");
        let path = dir.join("out.csv");
        sample().write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5, "header + 4 rows");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn figures_and_metrics_enumerate() {
        let r = sample();
        assert_eq!(r.figures(), vec!["fig6a".to_string()]);
        assert_eq!(r.metrics("fig6a"), vec!["total_distance".to_string()]);
    }
}
