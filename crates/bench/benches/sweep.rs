//! Benchmarks for the competitive-ratio sweep engine: the Hungarian
//! offline-opt matcher as an `AssignStrategy`, and the sharded sweep
//! runner's scaling from one shard to all cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::sweep::{run_sweep, sweep_instance, SweepConfig};
use pombm::{empirical_competitive_ratio, registry, PipelineConfig};
use std::hint::black_box;

fn base_config(shards: usize) -> SweepConfig {
    SweepConfig {
        mechanisms: vec!["identity".into(), "laplace".into()],
        matchers: vec!["greedy".into(), "offline-opt".into()],
        scenarios: Vec::new(),
        sizes: vec![64],
        epsilons: vec![0.4, 0.8],
        repetitions: 2,
        shards,
        timings: false,
        base: PipelineConfig {
            grid_side: 16,
            ..PipelineConfig::default()
        },
    }
}

/// One sweep cell (the unit the shards execute): ratio measurement of one
/// pairing on one instance.
fn bench_ratio_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("ratio_cell");
    group.sample_size(10);
    let instance = sweep_instance(11, 128);
    let config = PipelineConfig {
        grid_side: 16,
        ..PipelineConfig::default()
    };
    for name in ["opt", "tbf", "lap-gr"] {
        let spec = registry().spec(name).unwrap();
        group.bench_function(BenchmarkId::new("pairing", name), |b| {
            b.iter(|| {
                black_box(
                    empirical_competitive_ratio(spec, &instance, &config, 2).expect("measurable"),
                )
            })
        });
    }
    group.finish();
}

/// Whole-sweep scaling: one shard versus all available cores on the same
/// job list (output is bit-identical; only wall-clock changes).
fn bench_sweep_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_sharding");
    group.sample_size(10);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    for shards in [1, cores] {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| black_box(run_sweep(&base_config(shards)).expect("valid config")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ratio_cell, bench_sweep_sharding);
criterion_main!(benches);
