//! Benchmarks for partitioned sweep execution: the cost of computing one
//! `i/N` slice versus the whole space, the byte-exact merge itself (pure
//! reassembly — it must stay negligible next to cell computation), and
//! the checkpoint log's append/resume overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::merge::merge_static;
use pombm::sweep::{
    run_sweep, run_sweep_partition, sweep_job_count, PartitionPlan, PartitionRun, SweepConfig,
};
use pombm::PipelineConfig;
use std::hint::black_box;

fn bench_config() -> SweepConfig {
    SweepConfig {
        mechanisms: vec!["identity".into(), "laplace".into()],
        matchers: vec!["greedy".into(), "offline-opt".into()],
        scenarios: Vec::new(),
        sizes: vec![48],
        epsilons: vec![0.4, 0.8],
        repetitions: 2,
        shards: 1,
        timings: false,
        base: PipelineConfig {
            grid_side: 16,
            ..PipelineConfig::default()
        },
    }
}

/// One partition slice versus the full job space: the wall-clock a fleet
/// scheduler buys per machine.
fn bench_partition_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_slice");
    group.sample_size(10);
    let config = bench_config();
    group.bench_function(BenchmarkId::new("jobs", "full"), |b| {
        b.iter(|| black_box(run_sweep(&config).expect("valid config")))
    });
    for n in [2usize, 4] {
        let run = PartitionRun {
            plan: PartitionPlan::new(1, n).expect("valid plan"),
            ..PartitionRun::default()
        };
        group.bench_function(BenchmarkId::new("jobs", format!("slice-1-of-{n}")), |b| {
            b.iter(|| black_box(run_sweep_partition(&config, &run).expect("valid slice")))
        });
    }
    group.finish();
}

/// The merge is pure validation + reassembly; it must stay microseconds
/// even for many partials so it never bottlenecks a fleet reconciliation.
fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    let config = bench_config();
    let total = sweep_job_count(&config).expect("valid config");
    for n in [2usize, 8] {
        let n = n.min(total);
        let partials: Vec<_> = (1..=n)
            .map(|i| {
                let run = PartitionRun {
                    plan: PartitionPlan::new(i, n).expect("valid plan"),
                    ..PartitionRun::default()
                };
                run_sweep_partition(&config, &run).expect("valid slice").0
            })
            .collect();
        group.bench_function(BenchmarkId::new("partials", n), |b| {
            b.iter(|| black_box(merge_static(&partials).expect("full coverage")))
        });
    }
    group.finish();
}

/// Checkpointed versus plain execution of the same slice: the append
/// (serialize + write + flush per cell) and resume (parse log) overhead.
fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    let config = bench_config();
    let plain = PartitionRun::default();
    group.bench_function(BenchmarkId::new("run", "plain"), |b| {
        b.iter(|| black_box(run_sweep_partition(&config, &plain).expect("valid run")))
    });
    let dir = std::env::temp_dir().join("pombm-bench-checkpoint");
    group.bench_function(BenchmarkId::new("run", "checkpointed-cold"), |b| {
        b.iter(|| {
            // Cold every iteration: measure the append path, not resume.
            let _ = std::fs::remove_dir_all(&dir);
            let run = PartitionRun {
                checkpoint: Some(dir.clone()),
                ..PartitionRun::default()
            };
            black_box(run_sweep_partition(&config, &run).expect("valid run"))
        })
    });
    let warm = PartitionRun {
        checkpoint: Some(dir.clone()),
        ..PartitionRun::default()
    };
    run_sweep_partition(&config, &warm).expect("populate the log");
    group.bench_function(BenchmarkId::new("run", "resume-warm"), |b| {
        b.iter(|| black_box(run_sweep_partition(&config, &warm).expect("valid run")))
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    bench_partition_slice,
    bench_merge,
    bench_checkpoint_overhead
);
criterion_main!(benches);
