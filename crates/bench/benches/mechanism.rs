//! Micro-benchmarks for the privacy mechanisms.
//!
//! Covers the paper's complexity claims for obfuscation:
//! * Alg. 2 (naive enumeration) is `O(c^D)` per sample;
//! * Alg. 3 (random walk) is `O(D)` per sample — the headline speedup of
//!   Sec. III-D;
//! * the planar Laplace baseline for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm_geom::{seeded_rng, Grid, Point, Rect};
use pombm_hst::Hst;
use pombm_privacy::{Epsilon, HstMechanism, PlanarLaplace};
use std::hint::black_box;

fn bench_obfuscation(c: &mut Criterion) {
    let mut group = c.benchmark_group("obfuscation");
    let eps = Epsilon::new(0.6);

    // Naive Alg. 2 only fits small trees; compare on one.
    let small_grid = Grid::square(Rect::square(16.0), 4);
    let mut rng = seeded_rng(1, 0);
    let small_hst = Hst::build(&small_grid.to_point_set(), &mut rng);
    let small_mech = HstMechanism::new(&small_hst, eps);
    let x = small_hst.leaf_of(5);

    group.bench_function("alg2_naive_16pt_tree", |b| {
        let mut rng = seeded_rng(2, 0);
        b.iter(|| black_box(small_mech.obfuscate_naive(&small_hst, x, &mut rng)))
    });
    group.bench_function("alg3_walk_16pt_tree", |b| {
        let mut rng = seeded_rng(2, 1);
        b.iter(|| black_box(small_mech.obfuscate(&small_hst, x, &mut rng)))
    });

    // The walk on production-size trees: cost grows only with D.
    for side in [16usize, 32, 64] {
        let grid = Grid::square(Rect::square(200.0), side);
        let mut rng = seeded_rng(3, side as u64);
        let hst = Hst::build(&grid.to_point_set(), &mut rng);
        let mech = HstMechanism::new(&hst, eps);
        let x = hst.leaf_of(side); // an arbitrary real leaf
        group.bench_with_input(
            BenchmarkId::new("alg3_walk_grid", side * side),
            &side,
            |b, _| {
                let mut rng = seeded_rng(4, side as u64);
                b.iter(|| black_box(mech.obfuscate(&hst, x, &mut rng)))
            },
        );
    }

    group.bench_function("planar_laplace", |b| {
        let mech = PlanarLaplace::new(eps);
        let mut rng = seeded_rng(5, 0);
        let p = Point::new(100.0, 100.0);
        b.iter(|| black_box(mech.obfuscate(&p, &mut rng)))
    });

    group.finish();
}

/// Batch obfuscation: the scalar loop vs the snapshot batch (the worker
/// registration phase of the scalability experiments). Both paths produce
/// bit-identical outputs; only wall-clock differs.
fn bench_batch(c: &mut Criterion) {
    use pombm_privacy::batch;
    let mut group = c.benchmark_group("batch_obfuscation");
    group.sample_size(10);
    let grid = Grid::square(Rect::square(200.0), 32);
    let mut rng = seeded_rng(6, 0);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    let mech = HstMechanism::new(&hst, Epsilon::new(0.6));
    let exact: Vec<_> = (0..50_000)
        .map(|i| hst.leaf_of(i % hst.num_points()))
        .collect();
    group.bench_function("leaves_scalar_50k", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(7, 0);
            black_box(batch::obfuscate_leaves_scalar(
                &mech, &hst, &exact, &mut rng,
            ))
        })
    });
    let threads = batch::default_threads(exact.len());
    group.bench_function(format!("leaves_snapshot_50k_x{threads}"), |b| {
        b.iter(|| {
            let mut rng = seeded_rng(7, 0);
            black_box(batch::obfuscate_leaves_batch(
                &mech, &hst, &exact, &mut rng, threads,
            ))
        })
    });

    // The planar Laplace batch has the cheapest advance pass (two raw
    // draws) and the heaviest per-item math, so it scales the furthest.
    let lap = PlanarLaplace::new(Epsilon::new(0.6));
    let locations: Vec<Point> = {
        let mut rng = seeded_rng(8, 0);
        use rand::Rng;
        (0..50_000)
            .map(|_| Point::new(rng.gen::<f64>() * 200.0, rng.gen::<f64>() * 200.0))
            .collect()
    };
    group.bench_function("points_scalar_50k", |b| {
        b.iter(|| {
            let mut rng = seeded_rng(9, 0);
            black_box(batch::obfuscate_points_scalar(&lap, &locations, &mut rng))
        })
    });
    group.bench_function(format!("points_snapshot_50k_x{threads}"), |b| {
        b.iter(|| {
            let mut rng = seeded_rng(9, 0);
            black_box(batch::obfuscate_points_batch(
                &lap, &locations, &mut rng, threads,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_obfuscation, bench_batch);
criterion_main!(benches);
