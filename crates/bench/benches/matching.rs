//! Benchmarks the matcher engines (ablation `ablate-nn` / `ablate-grid`):
//! the paper's linear scans vs the index-accelerated equivalents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_hst::{CodeContext, LeafCode};
use pombm_matching::{EuclideanGreedy, HstGreedy, HstGreedyEngine};
use rand::Rng;
use std::hint::black_box;

fn random_leaves(ctx: CodeContext, n: usize, seed: u64) -> Vec<LeafCode> {
    let mut rng = seeded_rng(seed, 0);
    (0..n)
        .map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves())))
        .collect()
}

fn random_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = seeded_rng(seed, 1);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect()
}

fn bench_hst_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("hst_greedy_full_run");
    group.sample_size(10);
    let ctx = CodeContext::new(2, 12);
    for n in [1000usize, 5000] {
        let workers = random_leaves(ctx, n, 11);
        let tasks = random_leaves(ctx, n, 13);
        for engine in [HstGreedyEngine::Scan, HstGreedyEngine::Indexed] {
            group.bench_with_input(BenchmarkId::new(format!("{engine:?}"), n), &n, |b, _| {
                b.iter(|| {
                    let mut g = HstGreedy::new(ctx, workers.clone(), engine);
                    for &t in &tasks {
                        black_box(g.assign(t));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_euclid_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclid_greedy_full_run");
    group.sample_size(10);
    let region = Rect::square(200.0);
    for n in [1000usize, 5000] {
        let workers = random_points(n, 200.0, 17);
        let tasks = random_points(n, 200.0, 19);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let mut g = EuclideanGreedy::new(workers.clone());
                for t in &tasks {
                    black_box(g.assign(t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("cell_index", n), &n, |b, _| {
            b.iter(|| {
                let mut g = EuclideanGreedy::with_cell_index(workers.clone(), region, 32);
                for t in &tasks {
                    black_box(g.assign(t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("kd_tree", n), &n, |b, _| {
            b.iter(|| {
                let mut g = pombm_matching::kdtree::KdTree::build(workers.clone());
                for t in &tasks {
                    black_box(g.take_nearest(t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hst_engines, bench_euclid_engines);
criterion_main!(benches);
