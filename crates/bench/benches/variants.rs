//! Benchmarks for the extension modules: alternative online matchers
//! (randomized greedy, chain reassignment, capacitated greedy), the
//! exponential mechanism, and alias-table sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm_geom::{seeded_rng, Grid, Rect};
use pombm_hst::{CodeContext, LeafCode};
use pombm_matching::{
    CapacitatedGreedy, ChainMatcher, HstGreedy, HstGreedyEngine, RandomizedGreedy,
};
use pombm_privacy::{AliasTable, Epsilon, ExponentialMechanism};
use rand::Rng;
use std::hint::black_box;

fn random_leaves(ctx: CodeContext, n: usize, seed: u64) -> Vec<LeafCode> {
    let mut rng = seeded_rng(seed, 0);
    (0..n)
        .map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves())))
        .collect()
}

/// Full-run comparison of the online assignment rules on identical inputs.
fn bench_matcher_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_variants_full_run");
    group.sample_size(10);
    let ctx = CodeContext::new(2, 12);
    let n = 2000usize;
    let workers = random_leaves(ctx, n, 21);
    let tasks = random_leaves(ctx, n, 23);

    group.bench_function(BenchmarkId::new("greedy_indexed", n), |b| {
        b.iter(|| {
            let mut g = HstGreedy::new(ctx, workers.clone(), HstGreedyEngine::Indexed);
            for &t in &tasks {
                black_box(g.assign(t));
            }
        })
    });
    group.bench_function(BenchmarkId::new("randomized_greedy", n), |b| {
        b.iter(|| {
            let mut g = RandomizedGreedy::new(ctx, workers.clone());
            let mut rng = seeded_rng(29, 0);
            for &t in &tasks {
                black_box(g.assign(t, &mut rng));
            }
        })
    });
    group.bench_function(BenchmarkId::new("chain_matcher", n), |b| {
        b.iter(|| {
            let mut g = ChainMatcher::new(ctx, workers.clone());
            for &t in &tasks {
                black_box(g.assign(t));
            }
        })
    });
    group.bench_function(BenchmarkId::new("capacitated_q4", n), |b| {
        b.iter(|| {
            // Quarter the workers, capacity 4 each: same total slots.
            let quarter: Vec<LeafCode> = workers.iter().step_by(4).copied().collect();
            let mut g = CapacitatedGreedy::uniform(ctx, quarter, 4);
            for &t in &tasks {
                black_box(g.assign(t));
            }
        })
    });
    group.finish();
}

/// Exponential-mechanism sampling: cold (build the table) vs warm (cached).
fn bench_exponential(c: &mut Criterion) {
    let mut group = c.benchmark_group("exponential_mechanism");
    for side in [16usize, 32, 64] {
        let points = Grid::square(Rect::square(200.0), side).to_point_set();
        let n = points.len();
        group.bench_with_input(BenchmarkId::new("warm_cached", n), &n, |b, _| {
            let mut mech = ExponentialMechanism::new(points.clone(), Epsilon::new(0.6));
            let mut rng = seeded_rng(31, 0);
            // Prime the cache.
            let _ = mech.obfuscate(n / 2, &mut rng);
            b.iter(|| black_box(mech.obfuscate(n / 2, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("uncached_cdf_walk", n), &n, |b, _| {
            let mech = ExponentialMechanism::new(points.clone(), Epsilon::new(0.6));
            let mut rng = seeded_rng(31, 1);
            b.iter(|| black_box(mech.obfuscate_uncached(n / 2, &mut rng)))
        });
    }
    group.finish();
}

/// Alias-table construction and sampling vs support size.
fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_table");
    for n in [256usize, 4096, 65536] {
        let mut rng = seeded_rng(37, n as u64);
        let weights: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 1e-6).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(AliasTable::new(&weights)))
        });
        let table = AliasTable::new(&weights);
        group.bench_with_input(BenchmarkId::new("sample", n), &n, |b, _| {
            let mut rng = seeded_rng(41, 0);
            b.iter(|| black_box(table.sample(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matcher_variants,
    bench_exponential,
    bench_alias
);
criterion_main!(benches);
