//! End-to-end pipeline benchmarks: one full run (obfuscate + assign) per
//! registered algorithm spec at a fixed synthetic size, covering every
//! registry entry (including pairings the legacy enum could not express).
//! Related to the running-time comparison of Figs. 6e–h, but not
//! comparable point-for-point: the generic driver times worker
//! registration (matcher construction) inside the assignment stage,
//! which the paper's metric excluded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::{registry, run_spec_with_server, PipelineConfig, Server};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_full_run");
    group.sample_size(10);
    let params = SyntheticParams {
        num_tasks: 1000,
        num_workers: 2000,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(23, 0));
    let config = PipelineConfig {
        euclid_cells: 32,
        engine: pombm_matching::HstGreedyEngine::Indexed,
        ..PipelineConfig::default()
    };
    let server = Server::new(instance.region, config.grid_side, 23);

    for spec in registry().specs() {
        group.bench_with_input(BenchmarkId::new("spec", spec.name()), spec, |b, s| {
            b.iter(|| {
                black_box(
                    run_spec_with_server(s, &instance, &config, Some(&server), 0)
                        .expect("registered specs run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
