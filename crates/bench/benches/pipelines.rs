//! End-to-end pipeline benchmarks: one full run (obfuscate + assign) per
//! algorithm at a fixed synthetic size — the per-algorithm running-time
//! ordering underlying Figs. 6e–h.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::{run_with_server, Algorithm, PipelineConfig, Server};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_full_run");
    group.sample_size(10);
    let params = SyntheticParams {
        num_tasks: 1000,
        num_workers: 2000,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(23, 0));
    let config = PipelineConfig {
        euclid_cells: 32,
        engine: pombm_matching::HstGreedyEngine::Indexed,
        ..PipelineConfig::default()
    };
    let server = Server::new(instance.region, config.grid_side, 23);

    for algo in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::new("algo", algo.label()), &algo, |b, &a| {
            b.iter(|| black_box(run_with_server(a, &instance, &config, Some(&server), 0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
