//! Benchmarks for the dynamic-fleet pipeline: each registered dynamic
//! matcher on the same shift/task timeline, the clairvoyant oracle pricing
//! that timeline, and the sharded dynamic sweep's scaling from one shard
//! to all cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::sweep::{
    dynamic_shift_plan, dynamic_task_times, run_dynamic_sweep, sweep_instance, DynamicSweepConfig,
};
use pombm::{dynamic_offline_optimum_with_threads, registry, run_dynamic_spec, DynamicConfig};
use std::hint::black_box;

/// One dynamic simulation per registered matcher: 256 tasks streaming
/// against 256 workers on short shifts (heavy pool churn).
fn bench_dynamic_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_matcher");
    group.sample_size(10);
    let size = 256;
    let instance = sweep_instance(3, size);
    let times = dynamic_task_times(3, size);
    let plan = dynamic_shift_plan("short", size, 3).expect("named plan");
    let config = DynamicConfig {
        epsilon: 0.6,
        grid_side: 32,
        seed: 3,
    };
    let mechanism = registry().mechanism("hst").unwrap();
    for matcher in registry().dynamic_matchers() {
        group.bench_function(BenchmarkId::new("matcher", matcher.name()), |b| {
            b.iter(|| {
                black_box(
                    run_dynamic_spec(
                        &instance,
                        &times,
                        &plan,
                        &config,
                        mechanism.as_ref(),
                        matcher.as_ref(),
                    )
                    .expect("measurable pairing"),
                )
            })
        });
    }
    group.finish();
}

/// The clairvoyant oracle (`dynamic-opt`) pricing the same churning
/// timelines the matcher bench replays: the padded Hungarian solve at one
/// thread and at auto thread count. Pairs are bit-identical across thread
/// counts (pinned by tests); only wall-clock differs.
fn bench_clairvoyant_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("clairvoyant_oracle");
    group.sample_size(10);
    for size in [128usize, 256] {
        let instance = sweep_instance(3, size);
        let times = dynamic_task_times(3, size);
        let plan = dynamic_shift_plan("short", size, 3).expect("named plan");
        for threads in [1usize, 0] {
            let label = if threads == 1 {
                "threads_1"
            } else {
                "threads_auto"
            };
            group.bench_with_input(BenchmarkId::new(label, size), &instance, |b, inst| {
                b.iter(|| {
                    black_box(
                        dynamic_offline_optimum_with_threads(inst, &times, &plan, threads)
                            .expect("feasible timeline"),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Whole dynamic-sweep scaling: one shard versus all available cores on
/// the same job list (output is bit-identical; only wall-clock changes).
fn bench_dynamic_sweep_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_sweep_sharding");
    group.sample_size(10);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let config = |shards: usize| DynamicSweepConfig {
        mechanisms: vec!["identity".into(), "hst".into()],
        matchers: vec!["hst-greedy".into(), "kd-rebuild".into()],
        scenarios: Vec::new(),
        shift_plans: vec!["short".into(), "long".into()],
        sizes: vec![96],
        epsilons: vec![0.6],
        shards,
        timings: false,
        ratio: false,
        grid_side: 16,
        seed: 0,
    };
    for shards in [1, cores] {
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| black_box(run_dynamic_sweep(&config(shards)).expect("valid config")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dynamic_matchers,
    bench_clairvoyant_oracle,
    bench_dynamic_sweep_sharding
);
criterion_main!(benches);
