//! The Hungarian OPT hot path: pre-refactor closure-probing solver vs the
//! blocked engine (dense/Euclid auto-crossover, SIMD fused scan) at one
//! thread and at auto thread count.
//!
//! All three produce bit-identical pairs (pinned by tests); only
//! wall-clock differs. `BENCH_PR4.json` at the repository root records the
//! measured speedups; refresh it with the single-shot
//! `offline_opt_baseline` bin — the `k = 8192` reference row alone runs
//! for about a minute per iteration, so this criterion bench is a
//! several-minute affair best run on purpose, never in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm::sweep::sweep_instance;
use pombm_matching::offline::OfflineOptimal;
use std::hint::black_box;

fn bench_offline_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_opt");
    group.sample_size(10);
    for k in [512usize, 2048, 8192] {
        let instance = sweep_instance(11, k);
        group.bench_with_input(
            BenchmarkId::new("reference_closure", k),
            &instance,
            |b, inst| {
                b.iter(|| {
                    black_box(OfflineOptimal::solve_reference(k, k, |t, w| {
                        inst.tasks[t].dist(&inst.workers[w])
                    }))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("threads_1", k), &instance, |b, inst| {
            b.iter(|| {
                black_box(OfflineOptimal::solve_euclidean_with_threads(
                    &inst.tasks,
                    &inst.workers,
                    1,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("threads_auto", k), &instance, |b, inst| {
            b.iter(|| {
                black_box(OfflineOptimal::solve_euclidean_with_threads(
                    &inst.tasks,
                    &inst.workers,
                    0,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offline_opt);
criterion_main!(benches);
