//! Benchmarks HST construction (Alg. 1): `O(N²·D)` in the number of
//! predefined points, paid once when the server starts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pombm_geom::{seeded_rng, Grid, Rect};
use pombm_hst::Hst;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hst_construction");
    group.sample_size(10);
    for side in [8usize, 16, 32] {
        let grid = Grid::square(Rect::square(200.0), side);
        let points = grid.to_point_set();
        group.bench_with_input(BenchmarkId::new("frt", side * side), &side, |b, _| {
            let mut rng = seeded_rng(7, 0);
            b.iter(|| black_box(Hst::build(&points, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("quadtree", side * side), &side, |b, _| {
            b.iter(|| black_box(Hst::from_quadtree(&points)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
