#![warn(missing_docs)]

//! Geometry and metric-space substrate for the POMBM reproduction.
//!
//! The paper ("Differentially Private Online Task Assignment in Spatial
//! Crowdsourcing: A Tree-based Approach", ICDE 2020) models workers and tasks
//! as points in the Euclidean plane, and builds its tree-based privacy
//! mechanism on a *predefined* finite point set published by the server.
//!
//! This crate provides the shared primitives every other crate builds on:
//!
//! * [`Point`] — a 2-D point with Euclidean distance.
//! * [`Rect`] — an axis-aligned region (the workspace, e.g. the paper's
//!   200 × 200 synthetic space or the 10 km × 10 km Chengdu region).
//! * [`PointSet`] — an indexed finite metric space (the predefined points).
//! * [`Grid`] — a uniform grid of predefined points with O(1) nearest-point
//!   lookup, the canonical way the server publishes predefined points.
//! * [`seeded_rng`] — deterministic RNG construction so every experiment is
//!   reproducible from a seed.

pub mod grid;
pub mod point;
pub mod pointset;
pub mod rect;
pub mod rng;

pub use grid::Grid;
pub use point::Point;
pub use pointset::{PointId, PointSet};
pub use rect::Rect;
pub use rng::seeded_rng;
