//! 2-D points in the Euclidean plane.

use serde::{Deserialize, Serialize};

/// A point in the 2-D Euclidean plane.
///
/// Workers (Definition 1) and tasks (Definition 2) in the paper are tuples of
/// coordinates in Euclidean space; this type represents both.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::dist`]; prefer it for nearest-neighbour
    /// comparisons where the monotone transform does not matter.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise translation by `(dx, dy)`.
    #[inline]
    pub fn translate(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Sum of Euclidean distances of matched pairs; the paper's primary
/// effectiveness metric ("total distance", Definition 8 numerator).
pub fn total_distance(pairs: &[(Point, Point)]) -> f64 {
    pairs.iter().map(|(a, b)| a.dist(b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_to_self_is_zero() {
        let p = Point::new(1.5, -2.5);
        assert_eq!(p.dist(&p), 0.0);
    }

    #[test]
    fn translate_and_midpoint() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.translate(2.0, -1.0), Point::new(3.0, 1.0));
        assert_eq!(p.midpoint(&Point::new(3.0, 4.0)), Point::new(2.0, 3.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (7.0, 8.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (7.0, 8.0));
    }

    #[test]
    fn total_distance_sums_pairs() {
        let pairs = vec![
            (Point::new(0.0, 0.0), Point::new(3.0, 4.0)),
            (Point::new(1.0, 1.0), Point::new(1.0, 2.0)),
        ];
        assert!((total_distance(&pairs) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
    }
}
