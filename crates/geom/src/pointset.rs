//! Indexed finite metric spaces.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Index of a point inside a [`PointSet`].
pub type PointId = usize;

/// A finite set of points treated as a metric space `(V, d)` under the
/// Euclidean metric.
///
/// This is the input to HST construction (Alg. 1 takes "a metric space
/// `(V, d)`"): the server publishes a predefined point set and builds the
/// tree over it. Points are addressed by dense [`PointId`]s so that tree
/// nodes, leaf codes and mechanism tables can use plain arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSet {
    points: Vec<Point>,
}

impl PointSet {
    /// Wraps a vector of points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains a non-finite coordinate.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "point set must be non-empty");
        assert!(
            points.iter().all(Point::is_finite),
            "point set must contain only finite coordinates"
        );
        PointSet { points }
    }

    /// Number of points (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty. Always `false` for constructed sets, but
    /// kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with the given id.
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        self.points[id]
    }

    /// All points in id order.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Euclidean distance between two points in the set.
    #[inline]
    pub fn dist(&self, a: PointId, b: PointId) -> f64 {
        self.points[a].dist(&self.points[b])
    }

    /// Largest pairwise distance (the metric diameter), computed by brute
    /// force in `O(N²)`. Used once at HST construction to size the tree.
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                best = best.max(self.dist(i, j));
            }
        }
        best
    }

    /// Smallest nonzero pairwise distance, `O(N²)`.
    ///
    /// Returns `None` if the set has fewer than two distinct points. HST
    /// construction scales the metric by this value so the level-0 radius
    /// separates points into singleton clusters.
    pub fn min_distance(&self) -> Option<f64> {
        let mut best = f64::INFINITY;
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                let d = self.dist(i, j);
                if d > 0.0 {
                    best = best.min(d);
                }
            }
        }
        (best != f64::INFINITY).then_some(best)
    }

    /// Id of the point nearest to `p` by linear scan, with ties broken by the
    /// lower id. `O(N)`; [`crate::grid::Grid`] provides an O(1) alternative
    /// for grid-shaped sets.
    pub fn nearest(&self, p: &Point) -> PointId {
        let mut best = 0;
        let mut best_d = self.points[0].dist_sq(p);
        for (i, q) in self.points.iter().enumerate().skip(1) {
            let d = q.dist_sq(p);
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        best
    }

    /// Returns `true` if all points are pairwise distinct.
    pub fn all_distinct(&self) -> bool {
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                if self.points[i] == self.points[j] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_set() -> PointSet {
        // The running example of the paper (Example 1):
        // o1(1,1), o2(2,3), o3(5,3), o4(4,4).
        PointSet::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 3.0),
            Point::new(5.0, 3.0),
            Point::new(4.0, 4.0),
        ])
    }

    #[test]
    fn diameter_matches_example1() {
        // The paper computes D = ceil(log2(2 * d(o1, o3))) = 4, i.e. the
        // diameter is d(o1, o3) = sqrt(16 + 4) = sqrt(20).
        let s = example_set();
        assert!((s.diameter() - 20f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_distance_is_smallest_nonzero() {
        let s = example_set();
        // Closest pair is o3(5,3)-o4(4,4): sqrt(2).
        assert!((s.min_distance().unwrap() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_distance_none_for_singleton() {
        let s = PointSet::new(vec![Point::new(0.0, 0.0)]);
        assert_eq!(s.min_distance(), None);
    }

    #[test]
    fn min_distance_skips_duplicates() {
        let s = PointSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
        ]);
        assert_eq!(s.min_distance(), Some(3.0));
        assert!(!s.all_distinct());
    }

    #[test]
    fn nearest_breaks_ties_by_lower_id() {
        let s = PointSet::new(vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)]);
        // (1, 0) is equidistant; the lower id wins.
        assert_eq!(s.nearest(&Point::new(1.0, 0.0)), 0);
        assert_eq!(s.nearest(&Point::new(1.5, 0.0)), 1);
    }

    #[test]
    fn dist_is_symmetric() {
        let s = example_set();
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert_eq!(s.dist(i, j), s.dist(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_set_panics() {
        let _ = PointSet::new(vec![]);
    }
}
