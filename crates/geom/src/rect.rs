//! Axis-aligned rectangles describing a workspace region.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// The experiments operate in bounded regions: the paper's synthetic space is
/// `200 × 200` and the real-data region is `10 km × 10 km`. The rectangle is
/// used to generate predefined points, clamp obfuscated locations that fall
/// outside the region, and sample workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Smallest x coordinate contained in the region.
    pub min_x: f64,
    /// Smallest y coordinate contained in the region.
    pub min_y: f64,
    /// Largest x coordinate contained in the region.
    pub max_x: f64,
    /// Largest y coordinate contained in the region.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `min_x > max_x` or `min_y > max_y`, or any bound is not
    /// finite.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "rect bounds must be finite"
        );
        assert!(
            min_x <= max_x && min_y <= max_y,
            "degenerate rect: ({min_x},{min_y})-({max_x},{max_y})"
        );
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A square `[0, side] × [0, side]`, the shape used by all the paper's
    /// experiment regions.
    pub fn square(side: f64) -> Self {
        Rect::new(0.0, 0.0, side, side)
    }

    /// Width of the region.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the region.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Length of the diagonal, an upper bound on any pairwise distance in the
    /// region (used to size the HST level count).
    #[inline]
    pub fn diameter(&self) -> f64 {
        (self.width().powi(2) + self.height().powi(2)).sqrt()
    }

    /// Geometric center of the region.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Returns `true` if the point lies inside the closed rectangle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Clamps a point into the rectangle.
    ///
    /// Obfuscated locations drawn from an unbounded noise distribution (the
    /// planar Laplace baseline) can escape the region; the server clamps them
    /// back so downstream indexes stay well-defined.
    #[inline]
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_has_expected_bounds() {
        let r = Rect::square(200.0);
        assert_eq!(r.width(), 200.0);
        assert_eq!(r.height(), 200.0);
        assert_eq!(r.center(), Point::new(100.0, 100.0));
        assert!((r.diameter() - 200.0 * std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn contains_is_closed() {
        let r = Rect::square(10.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(10.0, 10.0)));
        assert!(r.contains(&Point::new(5.0, 5.0)));
        assert!(!r.contains(&Point::new(-0.001, 5.0)));
        assert!(!r.contains(&Point::new(5.0, 10.001)));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let r = Rect::square(10.0);
        assert_eq!(r.clamp(&Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.clamp(&Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "degenerate rect")]
    fn degenerate_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rect_panics() {
        let _ = Rect::new(0.0, 0.0, f64::NAN, 1.0);
    }

    #[test]
    fn zero_area_rect_is_allowed() {
        let r = Rect::new(1.0, 1.0, 1.0, 1.0);
        assert_eq!(r.diameter(), 0.0);
        assert!(r.contains(&Point::new(1.0, 1.0)));
    }
}
