//! Uniform grids of predefined points.

use crate::point::Point;
use crate::pointset::{PointId, PointSet};
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A uniform `cols × rows` grid of predefined points covering a region.
///
/// The paper's server "constructs an HST upon a predefined set of points and
/// publishes the tree as well as the set of points" (Sec. III-A). The paper
/// does not fix how the predefined set is chosen; a uniform grid is the
/// natural instantiation — it covers the workspace evenly, its minimum
/// pairwise distance equals the cell pitch (good for HST level-0 separation)
/// and nearest-point lookup is O(1) arithmetic instead of an O(N) scan.
///
/// Grid points are placed at cell centers so the worst-case snapping error is
/// half a cell diagonal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    region: Rect,
    cols: usize,
    rows: usize,
    pitch_x: f64,
    pitch_y: f64,
}

impl Grid {
    /// Creates a `cols × rows` grid over `region`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the region is degenerate in a
    /// dimension with more than one cell.
    pub fn new(region: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        assert!(
            (region.width() > 0.0 || cols == 1) && (region.height() > 0.0 || rows == 1),
            "degenerate region for multi-cell grid"
        );
        Grid {
            region,
            cols,
            rows,
            pitch_x: region.width() / cols as f64,
            pitch_y: region.height() / rows as f64,
        }
    }

    /// Square grid with `side × side` cells, the configuration used in all
    /// experiments.
    pub fn square(region: Rect, side: usize) -> Self {
        Grid::new(region, side, side)
    }

    /// Number of predefined points (the paper's `N`).
    #[inline]
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Whether the grid has no points; always `false` by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The covered region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Distance between horizontally adjacent grid points.
    #[inline]
    pub fn pitch_x(&self) -> f64 {
        self.pitch_x
    }

    /// Distance between vertically adjacent grid points.
    #[inline]
    pub fn pitch_y(&self) -> f64 {
        self.pitch_y
    }

    /// Coordinates of grid point `id` (row-major order).
    #[inline]
    pub fn point(&self, id: PointId) -> Point {
        debug_assert!(id < self.len());
        let col = id % self.cols;
        let row = id / self.cols;
        Point::new(
            self.region.min_x + (col as f64 + 0.5) * self.pitch_x,
            self.region.min_y + (row as f64 + 0.5) * self.pitch_y,
        )
    }

    /// Id of the grid point nearest to `p`, clamping points outside the
    /// region onto the boundary cells. O(1).
    #[inline]
    pub fn nearest(&self, p: &Point) -> PointId {
        let col = if self.pitch_x > 0.0 {
            (((p.x - self.region.min_x) / self.pitch_x).floor() as isize)
                .clamp(0, self.cols as isize - 1) as usize
        } else {
            0
        };
        let row = if self.pitch_y > 0.0 {
            (((p.y - self.region.min_y) / self.pitch_y).floor() as isize)
                .clamp(0, self.rows as isize - 1) as usize
        } else {
            0
        };
        row * self.cols + col
    }

    /// Materializes the grid as a [`PointSet`] (row-major id order matches
    /// [`Grid::point`] / [`Grid::nearest`]).
    pub fn to_point_set(&self) -> PointSet {
        PointSet::new((0..self.len()).map(|i| self.point(i)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_points_are_cell_centers() {
        let g = Grid::square(Rect::square(4.0), 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g.point(0), Point::new(1.0, 1.0));
        assert_eq!(g.point(1), Point::new(3.0, 1.0));
        assert_eq!(g.point(2), Point::new(1.0, 3.0));
        assert_eq!(g.point(3), Point::new(3.0, 3.0));
    }

    #[test]
    fn nearest_is_consistent_with_linear_scan() {
        let g = Grid::square(Rect::square(200.0), 8);
        let ps = g.to_point_set();
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(199.9, 199.9),
            Point::new(100.0, 50.0),
            Point::new(13.7, 180.2),
            Point::new(25.0, 25.0), // cell center itself
        ];
        for p in probes {
            let by_grid = g.point(g.nearest(&p));
            let by_scan = ps.point(ps.nearest(&p));
            // Ties at cell boundaries may resolve differently; compare
            // distances rather than ids.
            assert!(
                (by_grid.dist(&p) - by_scan.dist(&p)).abs() < 1e-9,
                "grid nearest {by_grid} vs scan nearest {by_scan} for {p}"
            );
        }
    }

    #[test]
    fn nearest_clamps_outside_points() {
        let g = Grid::square(Rect::square(10.0), 5);
        assert_eq!(g.nearest(&Point::new(-100.0, -100.0)), 0);
        assert_eq!(g.nearest(&Point::new(100.0, 100.0)), g.len() - 1);
    }

    #[test]
    fn min_distance_equals_pitch() {
        let g = Grid::square(Rect::square(200.0), 16);
        let ps = g.to_point_set();
        let pitch = 200.0 / 16.0;
        assert!((ps.min_distance().unwrap() - pitch).abs() < 1e-9);
    }

    #[test]
    fn rectangular_grid_ids_are_row_major() {
        let g = Grid::new(Rect::new(0.0, 0.0, 6.0, 2.0), 3, 1);
        assert_eq!(g.len(), 3);
        assert_eq!(g.point(2), Point::new(5.0, 1.0));
        assert_eq!(g.nearest(&Point::new(5.2, 0.4)), 2);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_dimension_panics() {
        let _ = Grid::new(Rect::square(1.0), 0, 3);
    }
}
