//! Deterministic RNG construction.
//!
//! Every randomized component in this reproduction — HST permutation and
//! radius factor β, privacy mechanisms, workload generators, arrival orders —
//! takes an explicit `&mut impl Rng`. Experiments build their generators
//! through [`seeded_rng`] so a run is fully reproducible from `(seed,
//! stream)` pairs, and independent components draw from independent streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic [`StdRng`] from a base seed and a stream id.
///
/// Different `stream` values yield statistically independent generators for
/// the same `seed`, so e.g. the workload generator and the privacy mechanism
/// of one experiment repetition never share a stream.
pub fn seeded_rng(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 over the combined value decorrelates (seed, stream) pairs
    // before seeding; StdRng seeded with nearby integers would otherwise be
    // fine, but this makes independence explicit and cheap.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let mut state = [0u8; 32];
    for chunk in state.chunks_mut(8) {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    StdRng::from_seed(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = seeded_rng(42, 0);
        let mut b = seeded_rng(42, 0);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = seeded_rng(42, 0);
        let mut b = seeded_rng(42, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1, 0);
        let mut b = seeded_rng(2, 0);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
