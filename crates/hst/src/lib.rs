#![warn(missing_docs)]

//! Hierarchically Well-Separated Trees (HSTs) for the POMBM reproduction.
//!
//! An HST is a tree embedding `T = (V_T, d_T)` of a finite metric space
//! `(V, d)` in which every leaf sits at level 0, every edge from a level-`i`
//! node to its parent has length `2^{i+1}`, and the tree metric dominates the
//! original metric while over-estimating it by only `O(log |V|)` in
//! expectation (Fakcharoenphol–Rao–Talwar).
//!
//! The paper builds its entire privacy mechanism on a *complete c-ary* HST:
//! after the randomized construction (Alg. 1), fake nodes are added until
//! every internal node has exactly `c` children. The crucial consequence is
//! that from any leaf `x` the complete tree looks identical: exactly
//! `(c-1)·c^{i-1}` leaves have their lowest common ancestor with `x` at level
//! `i`, and all of them are at tree distance `2^{i+2} - 4`.
//!
//! This crate implements:
//!
//! * [`Hst`] — construction over a [`pombm_geom::PointSet`] (Alg. 1),
//!   including the completion step. Fake subtrees are **never materialized**:
//!   leaves of the complete tree are identified by base-`c` *path codes*
//!   ([`LeafCode`]), and all tree-metric queries (LCA level, distance) are
//!   `O(D)` digit arithmetic.
//! * [`SubtreeCounter`] — a dynamic multiset of leaves supporting
//!   nearest-leaf queries in `O(c·D)`, used to accelerate the paper's
//!   HST-greedy matching beyond its `O(n·D)`-per-task linear scan.
//!
//! # Example
//!
//! ```
//! use pombm_geom::{seeded_rng, Grid, Rect};
//! use pombm_hst::Hst;
//!
//! // Build an HST over a 4x4 grid of predefined points (Alg. 1).
//! let points = Grid::square(Rect::square(100.0), 4).to_point_set();
//! let hst = Hst::build(&points, &mut seeded_rng(7, 0));
//!
//! // The tree metric dominates the Euclidean metric (HST property).
//! let (a, b) = (hst.leaf_of(0), hst.leaf_of(15));
//! assert!(hst.tree_dist(a, b) >= points.dist(0, 15));
//!
//! // Arbitrary locations snap to their nearest predefined point's leaf.
//! let leaf = hst.snap(&pombm_geom::Point::new(1.0, 2.0));
//! assert_eq!(leaf, hst.leaf_of(0));
//! ```

pub mod code;
pub mod construct;
pub mod counter;
pub mod quadtree;
pub mod tree;
pub mod wire;

pub use code::{CodeContext, LeafCode};
pub use construct::{FixedDraw, RawTree};
pub use counter::SubtreeCounter;
pub use tree::{Hst, HstParams};

/// Tree distance between two leaves whose LCA is at `level`, in *tree units*
/// (the scaled metric of the construction).
///
/// A leaf at level 0 reaches its level-`l` ancestor through edges of lengths
/// `2^1, 2^2, …, 2^l`, totalling `2^{l+1} - 2`; doubling for both endpoints
/// gives `2^{l+2} - 4`, the constant the paper uses throughout (Sec. III-C).
#[inline]
pub fn level_distance(level: u32) -> u64 {
    if level == 0 {
        0
    } else {
        (1u64 << (level + 2)) - 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_distance_matches_paper_constants() {
        assert_eq!(level_distance(0), 0);
        assert_eq!(level_distance(1), 4); // 2^3 - 4
        assert_eq!(level_distance(2), 12); // 2^4 - 4
        assert_eq!(level_distance(3), 28); // 2^5 - 4
        assert_eq!(level_distance(4), 60); // 2^6 - 4
    }

    #[test]
    fn level_distance_is_strictly_increasing() {
        for l in 0..40 {
            assert!(level_distance(l) < level_distance(l + 1));
        }
    }
}
