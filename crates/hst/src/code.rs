//! Path codes identifying leaves of the complete c-ary HST.

use serde::{Deserialize, Serialize};

/// A leaf of the *complete* c-ary HST, identified by its root-to-leaf path.
///
/// A complete HST of depth `D` and branching `c` has exactly `c^D` leaves.
/// Writing the child index chosen at each descent step as a base-`c` digit —
/// the digit at position `j` is the branch taken from the level-`j+1` node
/// down to level `j` — every leaf corresponds to a unique integer in
/// `[0, c^D)`. Real leaves (predefined points) occupy some of these codes;
/// the rest are the paper's "fake nodes", which exist only as codes and are
/// never materialized.
///
/// All interpretation (LCA level, tree distance, ancestor prefixes) needs the
/// tree's `(c, D)` context and lives on [`crate::Hst`]; the code itself is a
/// plain value type cheap to copy, hash and order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct LeafCode(pub u64);

impl LeafCode {
    /// The raw base-`c` integer value of the path.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for LeafCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "leaf#{}", self.0)
    }
}

/// Digit arithmetic over `(c, D)`-contexts, shared by [`crate::Hst`] and
/// [`crate::SubtreeCounter`].
///
/// Kept separate from `Hst` so the counter can answer queries without holding
/// a reference to the full tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeContext {
    /// Branching factor `c ≥ 2` of the complete tree.
    pub branching: u32,
    /// Depth `D ≥ 1`: root at level `D`, leaves at level 0.
    pub depth: u32,
}

impl CodeContext {
    /// Creates a context, validating that all `c^D` codes fit in a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `c < 2`, `D < 1`, or `c^D` overflows `u64`.
    pub fn new(branching: u32, depth: u32) -> Self {
        assert!(branching >= 2, "complete HST needs branching >= 2");
        assert!(depth >= 1, "HST needs at least one level");
        let mut acc: u64 = 1;
        for _ in 0..depth {
            acc = acc
                .checked_mul(branching as u64)
                .expect("c^D must fit in u64; use a coarser predefined point set");
        }
        CodeContext { branching, depth }
    }

    /// Total number of leaves `c^D` in the complete tree.
    #[inline]
    pub fn num_leaves(&self) -> u64 {
        (self.branching as u64).pow(self.depth)
    }

    /// `c^level`, the number of leaves under one subtree rooted at `level`.
    #[inline]
    pub fn leaves_below(&self, level: u32) -> u64 {
        debug_assert!(level <= self.depth);
        (self.branching as u64).pow(level)
    }

    /// Number of leaves whose LCA with a fixed leaf is exactly at `level`:
    /// `1` for level 0 and `(c-1)·c^{i-1}` for `i ≥ 1` (paper Sec. III-C).
    #[inline]
    pub fn sibling_leaves_at(&self, level: u32) -> u64 {
        debug_assert!(level <= self.depth);
        if level == 0 {
            1
        } else {
            (self.branching as u64 - 1) * (self.branching as u64).pow(level - 1)
        }
    }

    /// The base-`c` digit of `code` at position `level ∈ [0, D)`: the branch
    /// taken from the level-`level+1` ancestor down to level `level`.
    #[inline]
    pub fn digit(&self, code: LeafCode, level: u32) -> u32 {
        debug_assert!(level < self.depth);
        ((code.0 / self.leaves_below(level)) % self.branching as u64) as u32
    }

    /// Identifier of the level-`level` ancestor of `code`: the code with its
    /// lowest `level` digits stripped. Level `0` returns the code itself;
    /// level `D` returns `0` (the root) for every leaf.
    #[inline]
    pub fn ancestor(&self, code: LeafCode, level: u32) -> u64 {
        debug_assert!(level <= self.depth);
        code.0 / self.leaves_below(level)
    }

    /// Level of the lowest common ancestor of two leaves: `0` iff the codes
    /// are equal, otherwise `1 +` the position of the most significant
    /// differing digit. `O(D)`.
    #[inline]
    pub fn lca_level(&self, a: LeafCode, b: LeafCode) -> u32 {
        if a == b {
            return 0;
        }
        // Smallest p with a / c^p == b / c^p; digit p-1 then differs, so the
        // LCA sits at level p.
        let c = self.branching as u64;
        let (mut x, mut y) = (a.0, b.0);
        let mut level = 0;
        while x != y {
            x /= c;
            y /= c;
            level += 1;
        }
        level
    }

    /// Tree distance between two leaves in tree units (`2^{l+2} - 4` for LCA
    /// level `l ≥ 1`, `0` for identical leaves).
    #[inline]
    pub fn tree_dist_units(&self, a: LeafCode, b: LeafCode) -> u64 {
        crate::level_distance(self.lca_level(a, b))
    }

    /// Checks that a code indexes a leaf of this tree.
    #[inline]
    pub fn contains(&self, code: LeafCode) -> bool {
        code.0 < self.num_leaves()
    }

    /// Builds the leaf code from its digits, most significant (level `D-1`)
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if the digit count is not `D` or any digit is `≥ c`.
    pub fn from_digits(&self, digits: &[u32]) -> LeafCode {
        assert_eq!(digits.len() as u32, self.depth, "need exactly D digits");
        let mut v: u64 = 0;
        for &d in digits {
            assert!(d < self.branching, "digit {d} out of range");
            v = v * self.branching as u64 + d as u64;
        }
        LeafCode(v)
    }

    /// Decomposes a code into its digits, most significant first. Inverse of
    /// [`CodeContext::from_digits`].
    pub fn to_digits(&self, code: LeafCode) -> Vec<u32> {
        (0..self.depth)
            .rev()
            .map(|lvl| self.digit(code, lvl))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    #[test]
    fn leaf_counts() {
        let c = ctx();
        assert_eq!(c.num_leaves(), 16);
        assert_eq!(c.sibling_leaves_at(0), 1);
        assert_eq!(c.sibling_leaves_at(1), 1);
        assert_eq!(c.sibling_leaves_at(2), 2);
        assert_eq!(c.sibling_leaves_at(3), 4);
        assert_eq!(c.sibling_leaves_at(4), 8);
        // Partition property: sum over levels = total leaves.
        let total: u64 = (0..=4).map(|l| c.sibling_leaves_at(l)).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn ternary_sibling_counts_partition_leaves() {
        let c = CodeContext::new(3, 3);
        assert_eq!(c.num_leaves(), 27);
        let total: u64 = (0..=3).map(|l| c.sibling_leaves_at(l)).sum();
        assert_eq!(total, 27);
        assert_eq!(c.sibling_leaves_at(2), 2 * 3);
    }

    #[test]
    fn digits_roundtrip() {
        let c = CodeContext::new(3, 5);
        for v in [0u64, 1, 80, 121, 242] {
            let code = LeafCode(v);
            let digits = c.to_digits(code);
            assert_eq!(c.from_digits(&digits), code);
        }
    }

    #[test]
    fn lca_level_from_digits() {
        let c = ctx();
        let a = c.from_digits(&[0, 1, 0, 1]);
        assert_eq!(c.lca_level(a, a), 0);
        // Differ in the least significant digit -> LCA at level 1.
        let b = c.from_digits(&[0, 1, 0, 0]);
        assert_eq!(c.lca_level(a, b), 1);
        // Differ at digit position 2 (level-3 branch) -> LCA at level 3.
        let d = c.from_digits(&[0, 0, 1, 1]);
        assert_eq!(c.lca_level(a, d), 3);
        // Differ at the most significant digit -> LCA at the root (level 4).
        let e = c.from_digits(&[1, 1, 0, 1]);
        assert_eq!(c.lca_level(a, e), 4);
    }

    #[test]
    fn lca_level_is_symmetric_and_bounded() {
        let c = CodeContext::new(3, 4);
        for x in 0..c.num_leaves() {
            for y in 0..c.num_leaves() {
                let l = c.lca_level(LeafCode(x), LeafCode(y));
                assert_eq!(l, c.lca_level(LeafCode(y), LeafCode(x)));
                assert!(l <= 4);
                assert_eq!(l == 0, x == y);
            }
        }
    }

    #[test]
    fn tree_distance_satisfies_strong_triangle() {
        // HST distances form an ultrametric on leaves:
        // d(x, z) <= max(d(x, y), d(y, z)).
        let c = CodeContext::new(2, 5);
        let codes = [0u64, 5, 9, 17, 31];
        for &x in &codes {
            for &y in &codes {
                for &z in &codes {
                    let dxz = c.tree_dist_units(LeafCode(x), LeafCode(z));
                    let dxy = c.tree_dist_units(LeafCode(x), LeafCode(y));
                    let dyz = c.tree_dist_units(LeafCode(y), LeafCode(z));
                    assert!(dxz <= dxy.max(dyz));
                }
            }
        }
    }

    #[test]
    fn ancestor_prefixes_nest() {
        let c = CodeContext::new(3, 4);
        let code = LeafCode(77);
        for lvl in 0..4 {
            let lower = c.ancestor(code, lvl);
            let upper = c.ancestor(code, lvl + 1);
            assert_eq!(lower / c.branching as u64, upper);
        }
        assert_eq!(c.ancestor(code, 4), 0);
    }

    #[test]
    #[should_panic(expected = "branching >= 2")]
    fn unary_tree_rejected() {
        let _ = CodeContext::new(1, 3);
    }

    #[test]
    #[should_panic(expected = "fit in u64")]
    fn overflowing_context_rejected() {
        let _ = CodeContext::new(u32::MAX, 3);
    }
}
