//! Compact wire format for publishing the HST.
//!
//! Step 1 of the paper's workflow has the server *publish* the HST and the
//! predefined point set to every worker and task; the paper motivates both
//! the fixed predefined set and the complete-tree completion by
//! **communication cost** (Sec. III-B: fake nodes "simplify the information
//! about the HST that needs to be communicated ... so as to further save the
//! communication overhead").
//!
//! This module makes that saving concrete. Because the complete tree is
//! fully determined by `(c, D, scale)` plus the leaf code of each predefined
//! point, the publication is just:
//!
//! ```text
//! magic(4) version(1) c(4) D(4) scale(8) n(4)
//! n × { x(8) y(8) leaf_code(8) }
//! crc32(4)
//! ```
//!
//! — `28·N + 25` bytes total, independent of `c^D`. Clients rebuild every
//! query structure (LCA levels, distances, mechanism tables) from this
//! header alone; no node list is ever exchanged.

use crate::code::{CodeContext, LeafCode};
use crate::tree::Hst;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pombm_geom::{Point, PointSet};

/// Magic bytes identifying the format.
const MAGIC: &[u8; 4] = b"HST1";
/// Current format version.
const VERSION: u8 = 1;

/// Errors while decoding a published tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header or the declared payload.
    Truncated,
    /// Magic bytes or version mismatch.
    BadHeader,
    /// The checksum does not match the payload.
    BadChecksum,
    /// A field value is structurally invalid (e.g. duplicate leaf codes,
    /// codes out of range, non-finite coordinates).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadHeader => write!(f, "bad magic or unsupported version"),
            DecodeError::BadChecksum => write!(f, "checksum mismatch"),
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The client-side view of a published tree: everything a worker or task
/// needs to snap its location, obfuscate it and interpret assignments —
/// without the server-side construction state.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedHst {
    /// Code-arithmetic context `(c, D)`.
    pub ctx: CodeContext,
    /// Metric scale divisor of the construction.
    pub scale: f64,
    /// The predefined points, id order matching `leaf_codes`.
    pub points: PointSet,
    /// Leaf code of each predefined point.
    pub leaf_codes: Vec<LeafCode>,
}

impl PublishedHst {
    /// Leaf code of the predefined point nearest to `location` (`O(N)`; grid
    /// deployments use grid arithmetic instead).
    pub fn snap(&self, location: &Point) -> LeafCode {
        self.leaf_codes[self.points.nearest(location)]
    }

    /// Tree distance between two leaves in original units.
    pub fn tree_dist(&self, a: LeafCode, b: LeafCode) -> f64 {
        self.ctx.tree_dist_units(a, b) as f64 * self.scale
    }
}

/// Encodes a server-side [`Hst`] for publication.
pub fn encode(hst: &Hst) -> Bytes {
    let n = hst.num_points();
    let mut buf = BytesMut::with_capacity(25 + 24 * n);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32(hst.branching());
    buf.put_u32(hst.depth());
    buf.put_f64(hst.scale());
    buf.put_u32(n as u32);
    for p in 0..n {
        let pt = hst.points().point(p);
        buf.put_f64(pt.x);
        buf.put_f64(pt.y);
        buf.put_u64(hst.leaf_of(p).value());
    }
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.freeze()
}

/// Decodes a published tree, verifying structure and checksum.
pub fn decode(mut data: Bytes) -> Result<PublishedHst, DecodeError> {
    // Header: 4 + 1 + 4 + 4 + 8 + 4 = 25 bytes, plus trailing crc32.
    if data.len() < 25 + 4 {
        return Err(DecodeError::Truncated);
    }
    let crc_expected = {
        let payload = &data[..data.len() - 4];
        crc32(payload)
    };
    let crc_stored = u32::from_be_bytes(data[data.len() - 4..].try_into().expect("4 bytes"));
    if crc_expected != crc_stored {
        return Err(DecodeError::BadChecksum);
    }
    data.truncate(data.len() - 4);

    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC || data.get_u8() != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let branching = data.get_u32();
    let depth = data.get_u32();
    let scale = data.get_f64();
    let n = data.get_u32() as usize;
    if branching < 2 || depth == 0 {
        return Err(DecodeError::Invalid("tree shape"));
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(DecodeError::Invalid("scale"));
    }
    if data.remaining() != n * 24 {
        return Err(DecodeError::Truncated);
    }
    if n == 0 {
        return Err(DecodeError::Invalid("empty point set"));
    }
    // Validate (c, D) fits u64 without panicking on hostile input.
    let mut acc: u64 = 1;
    for _ in 0..depth {
        acc = acc
            .checked_mul(branching as u64)
            .ok_or(DecodeError::Invalid("c^D overflow"))?;
    }
    let ctx = CodeContext::new(branching, depth);

    let mut points = Vec::with_capacity(n);
    let mut leaf_codes = Vec::with_capacity(n);
    // lint: allow(DET-HASH) — duplicate-code check only; never iterated.
    let mut seen = std::collections::HashSet::with_capacity(n);
    for _ in 0..n {
        let x = data.get_f64();
        let y = data.get_f64();
        let code = LeafCode(data.get_u64());
        if !(x.is_finite() && y.is_finite()) {
            return Err(DecodeError::Invalid("non-finite coordinate"));
        }
        if !ctx.contains(code) {
            return Err(DecodeError::Invalid("leaf code out of range"));
        }
        if !seen.insert(code) {
            return Err(DecodeError::Invalid("duplicate leaf code"));
        }
        points.push(Point::new(x, y));
        leaf_codes.push(code);
    }
    Ok(PublishedHst {
        ctx,
        scale,
        points: PointSet::new(points),
        leaf_codes,
    })
}

/// Published size in bytes for a tree over `n` points: the fixed header plus
/// one record per point plus the checksum.
pub fn encoded_size(n: usize) -> usize {
    25 + 24 * n + 4
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice. Small and dependency-
/// free; publication integrity, not cryptographic authenticity.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Grid, Rect};

    fn sample_hst() -> Hst {
        let grid = Grid::square(Rect::square(100.0), 5);
        let mut rng = seeded_rng(77, 0);
        Hst::build(&grid.to_point_set(), &mut rng)
    }

    #[test]
    fn roundtrip_preserves_everything_queryable() {
        let hst = sample_hst();
        let bytes = encode(&hst);
        assert_eq!(bytes.len(), encoded_size(hst.num_points()));
        let published = decode(bytes).unwrap();
        assert_eq!(published.ctx, hst.ctx());
        assert_eq!(published.scale, hst.scale());
        assert_eq!(published.points.len(), hst.num_points());
        for p in 0..hst.num_points() {
            assert_eq!(published.leaf_codes[p], hst.leaf_of(p));
            assert_eq!(published.points.point(p), hst.points().point(p));
        }
        // Distances agree on all pairs.
        for a in 0..hst.num_points() {
            for b in 0..hst.num_points() {
                assert_eq!(
                    published.tree_dist(hst.leaf_of(a), hst.leaf_of(b)),
                    hst.tree_dist(hst.leaf_of(a), hst.leaf_of(b)),
                );
            }
        }
    }

    #[test]
    fn published_snap_matches_server_snap() {
        let hst = sample_hst();
        let published = decode(encode(&hst)).unwrap();
        for probe in [
            Point::new(0.0, 0.0),
            Point::new(55.5, 42.0),
            Point::new(99.9, 99.9),
        ] {
            assert_eq!(published.snap(&probe), hst.snap(&probe));
        }
    }

    #[test]
    fn size_is_independent_of_completion_width() {
        // The whole point of the format: 24 bytes per point, no c^D term.
        let hst = sample_hst();
        let leaves = hst.num_leaves();
        assert!(leaves > hst.num_points() as u64, "completion adds leaves");
        assert_eq!(encode(&hst).len(), 29 + 24 * hst.num_points());
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode(&sample_hst());
        for cut in [0usize, 10, 28, bytes.len() - 5] {
            let sliced = bytes.slice(..cut);
            assert!(
                matches!(
                    decode(sliced),
                    Err(DecodeError::Truncated) | Err(DecodeError::BadChecksum)
                ),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = encode(&sample_hst());
        for pos in [0usize, 5, 20, 40, bytes.len() - 6] {
            let mut corrupted = bytes.to_vec();
            corrupted[pos] ^= 0x40;
            let err = decode(Bytes::from(corrupted)).unwrap_err();
            assert!(
                matches!(err, DecodeError::BadChecksum),
                "flip at {pos}: got {err}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected_after_checksum_fixup() {
        // Build a buffer with wrong magic but valid checksum: decode must
        // fail on the header, not the checksum.
        let bytes = encode(&sample_hst());
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        let len = raw.len();
        let crc = crc32(&raw[..len - 4]);
        raw[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(decode(Bytes::from(raw)), Err(DecodeError::BadHeader));
    }

    #[test]
    fn duplicate_leaf_codes_rejected() {
        let hst = sample_hst();
        let mut raw = encode(&hst).to_vec();
        // Overwrite the second record's code with the first record's code.
        // Records start at offset 25; code sits at +16 within the record.
        let first_code = &raw[25 + 16..25 + 24].to_vec();
        raw[25 + 24 + 16..25 + 24 + 24].copy_from_slice(first_code);
        let len = raw.len();
        let crc = crc32(&raw[..len - 4]);
        raw[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            decode(Bytes::from(raw)),
            Err(DecodeError::Invalid("duplicate leaf code"))
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn decode_error_displays() {
        assert_eq!(DecodeError::Truncated.to_string(), "buffer truncated");
        assert!(DecodeError::Invalid("scale").to_string().contains("scale"));
    }
}
