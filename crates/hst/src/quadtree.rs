//! Deterministic quadtree construction: the ablation against Alg. 1.
//!
//! A quadtree over the plane *is* a 2-HST: leaves at level 0, each level-`i`
//! cell of side `2^i` nested in a level-`i+1` cell of side `2^{i+1}`. This
//! module builds the same [`RawTree`] structure as the paper's randomized
//! FRT construction ([`crate::construct::build_raw`]) but by deterministic
//! dyadic subdivision, so the two can be compared under identical
//! mechanisms and matchers.
//!
//! Why the paper randomizes instead: a quadtree's cell boundaries are
//! *fixed*, so two points a hair's width apart but straddling a high-level
//! boundary are separated near the root — tree distance `Θ(2^D)` for
//! Euclidean distance `ε`. The FRT construction randomizes the boundaries
//! (via `β` and the permutation) so every pair is *likely* cut low; its
//! `O(log N)` stretch holds only in expectation over trees. The
//! `ablatetree` experiment measures what that randomization buys.
//!
//! Domination still holds deterministically: the metric is pre-scaled so
//! the minimum pairwise distance is at least 2, which (a) makes every
//! level-0 unit cell a singleton (a unit cell's diameter is √2 < 2) and
//! (b) keeps the Euclidean distance of any two points below their tree
//! distance (points sharing a level-`l` cell are at most `√2·2^l` apart,
//! below the `2^{l+2} − 4` tree distance for every `l ≥ 1`).

use crate::construct::{RawNode, RawTree};
use pombm_geom::{PointId, PointSet};

/// Builds a quadtree [`RawTree`] over `points` by dyadic subdivision.
///
/// Deterministic: the same input always produces the same tree. The
/// returned tree's `beta`/`permutation` fields are filled with inert
/// placeholder values (β = 1/2, identity permutation) — they parameterize
/// only the randomized construction.
///
/// # Panics
///
/// Panics if `points` contains duplicates (each point needs its own leaf).
pub fn build_quadtree(points: &PointSet) -> RawTree {
    let n = points.len();
    assert!(
        points.all_distinct(),
        "predefined points must be pairwise distinct so each gets its own leaf"
    );

    // Scale so the minimum pairwise distance is >= 2: level-0 unit cells
    // are then singletons (unit-cell diameter √2 < 2).
    let scale = match points.min_distance() {
        Some(d) if d < 2.0 => d / 2.0,
        _ => 1.0,
    };

    // Shift into the positive quadrant and size the root cell.
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points.points() {
        min_x = min_x.min(p.x / scale);
        min_y = min_y.min(p.y / scale);
        max_x = max_x.max(p.x / scale);
        max_y = max_y.max(p.y / scale);
    }
    let extent = (max_x - min_x).max(max_y - min_y).max(1.0);
    // Root cell side 2^D must cover the extent; nudge up so points on the
    // far edge stay strictly inside.
    let depth = (extent * (1.0 + 1e-12)).log2().ceil().max(1.0) as u32;
    let side = (1u64 << depth) as f64;
    debug_assert!(side >= extent);

    let cell_xy = |p: PointId, level: u32| -> (u64, u64) {
        let q = points.point(p);
        let cell = (1u64 << level) as f64;
        let cx = (((q.x / scale - min_x) / cell).floor() as u64).min((side / cell) as u64 - 1);
        let cy = (((q.y / scale - min_y) / cell).floor() as u64).min((side / cell) as u64 - 1);
        (cx, cy)
    };

    let root = RawNode {
        level: depth,
        parent: usize::MAX,
        child_index: 0,
        children: Vec::new(),
        point: None,
    };
    let mut nodes = vec![root];
    let mut leaf_of = vec![usize::MAX; n];
    // Frontier of (node index, member point ids) at the current level.
    let mut frontier: Vec<(usize, Vec<PointId>)> = vec![(0, (0..n).collect())];

    for level in (0..depth).rev() {
        let mut next = Vec::with_capacity(frontier.len());
        for (node_idx, members) in frontier {
            // Group members by their level-`level` cell. Quadrant order
            // (SW, SE, NW, NE by parity) keeps child indices deterministic.
            let mut quadrants: [Vec<PointId>; 4] = Default::default();
            for &p in &members {
                let (cx, cy) = cell_xy(p, level);
                quadrants[((cy & 1) * 2 + (cx & 1)) as usize].push(p);
            }
            for quadrant in quadrants {
                if quadrant.is_empty() {
                    continue;
                }
                let child_index = nodes[node_idx].children.len() as u32;
                let point = if level == 0 {
                    assert_eq!(
                        quadrant.len(),
                        1,
                        "level-0 cell holds {} points; scaling violated",
                        quadrant.len()
                    );
                    Some(quadrant[0])
                } else {
                    None
                };
                let child = RawNode {
                    level,
                    parent: node_idx,
                    child_index,
                    children: Vec::new(),
                    point,
                };
                let idx = nodes.len();
                nodes.push(child);
                nodes[node_idx].children.push(idx);
                if level == 0 {
                    leaf_of[quadrant[0]] = idx;
                } else {
                    next.push((idx, quadrant));
                }
            }
        }
        frontier = next;
    }
    debug_assert!(leaf_of.iter().all(|&l| l != usize::MAX));

    RawTree {
        nodes,
        leaf_of,
        depth,
        beta: 0.5,
        permutation: (0..n).collect(),
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Hst, HstParams};
    use pombm_geom::{Grid, Point, Rect};

    fn grid_points(side: usize) -> PointSet {
        Grid::square(Rect::square(100.0), side).to_point_set()
    }

    #[test]
    fn structure_is_valid() {
        let ps = grid_points(5);
        let raw = build_quadtree(&ps);
        raw.validate(ps.len()).unwrap();
    }

    #[test]
    fn construction_is_deterministic() {
        let ps = grid_points(6);
        let a = build_quadtree(&ps);
        let b = build_quadtree(&ps);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.leaf_of, b.leaf_of);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn branching_is_at_most_four() {
        let raw = build_quadtree(&grid_points(7));
        assert!(raw.max_branching() <= 4, "quadtree children exceed 4");
    }

    #[test]
    fn domination_holds_via_hst() {
        let ps = grid_points(6);
        let hst = Hst::from_quadtree(&ps);
        hst.validate_domination().unwrap();
    }

    #[test]
    fn each_point_has_its_own_leaf() {
        let ps = PointSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0), // closer than 1: scaling must separate
            Point::new(10.0, 10.0),
        ]);
        let raw = build_quadtree(&ps);
        raw.validate(3).unwrap();
        let hst = Hst::from_quadtree(&ps);
        let codes: std::collections::HashSet<_> = (0..3).map(|p| hst.leaf_of(p)).collect();
        assert_eq!(codes.len(), 3);
    }

    #[test]
    fn quadtree_stretch_is_finite_but_boundary_pairs_pay() {
        // The deterministic boundary effect: neighbouring grid points that
        // straddle the root split have near-maximal tree distance.
        let ps = grid_points(8);
        let hst = Hst::from_quadtree(&ps);
        let mut max_stretch = 0.0f64;
        for a in 0..ps.len() {
            for b in (a + 1)..ps.len() {
                let stretch = hst.tree_dist(hst.leaf_of(a), hst.leaf_of(b)) / ps.dist(a, b);
                max_stretch = max_stretch.max(stretch);
            }
        }
        // Adjacent points across the mid-line: tree distance Θ(2^D) vs
        // Euclidean ~ grid pitch. The stretch must be large (that is the
        // point of the ablation) but finite.
        assert!(max_stretch.is_finite());
        assert!(
            max_stretch > 8.0,
            "expected a boundary pair with large stretch, got {max_stretch}"
        );
    }

    #[test]
    fn single_point_builds() {
        let ps = PointSet::new(vec![Point::new(3.0, 4.0)]);
        let raw = build_quadtree(&ps);
        raw.validate(1).unwrap();
        assert_eq!(raw.depth, 1);
    }

    #[test]
    fn params_allow_wider_completion() {
        let ps = grid_points(4);
        let hst = Hst::from_quadtree_with(
            &ps,
            HstParams {
                fixed: None,
                branching: Some(4),
            },
        );
        assert_eq!(hst.branching(), 4);
        hst.validate_domination().unwrap();
    }
}
