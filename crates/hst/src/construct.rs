//! Randomized HST construction (Alg. 1 of the paper, FRT-style).
//!
//! Given a finite metric space `(V, d)`, the construction draws a random
//! permutation `π` of `V` and a radius factor `β`, then partitions each
//! level-`i+1` cluster by sweeping balls of radius `β·2^i` around the points
//! in permutation order. Each non-empty intersection becomes a child cluster
//! at level `i`. Level-0 clusters are singletons (guaranteed because the
//! metric is pre-scaled so the minimum pairwise distance is at least 1 and
//! `β < 1`), so each point ends at its own leaf.

use pombm_geom::{PointId, PointSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// One node of the *real* (pre-completion) HST.
#[derive(Debug, Clone)]
pub struct RawNode {
    /// Level of this node; the root is at `depth`, leaves at 0.
    pub level: u32,
    /// Parent index in [`RawTree::nodes`]; `usize::MAX` for the root.
    pub parent: usize,
    /// Position of this node among its parent's children (the base-`c` digit
    /// assigned during completion).
    pub child_index: u32,
    /// Children node indices, in creation (permutation-sweep) order.
    pub children: Vec<usize>,
    /// The single point id for level-0 leaves, `None` for internal nodes.
    pub point: Option<PointId>,
}

/// The real HST produced by Alg. 1 before fake-node completion.
#[derive(Debug, Clone)]
pub struct RawTree {
    /// All nodes; index 0 is the root.
    pub nodes: Vec<RawNode>,
    /// `leaf_of[p]` is the node index of point `p`'s leaf.
    pub leaf_of: Vec<usize>,
    /// Number of levels `D` (root level).
    pub depth: u32,
    /// The radius factor β drawn for this tree.
    pub beta: f64,
    /// The permutation π of point ids drawn for this tree.
    pub permutation: Vec<PointId>,
    /// Factor by which original distances were divided before construction
    /// (1.0 when the input metric already has minimum distance ≥ 1).
    pub scale: f64,
}

impl RawTree {
    /// Maximum number of children over all internal nodes (the completion
    /// branching factor before clamping to ≥ 2).
    pub fn max_branching(&self) -> u32 {
        self.nodes
            .iter()
            .map(|n| n.children.len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Total number of real nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree has no nodes; never true for constructed trees.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Verified properties: the root is node 0 at level `depth`; every child
    /// is exactly one level below its parent with a consistent back-pointer
    /// and `child_index`; every point owns exactly one level-0 leaf.
    pub fn validate(&self, num_points: usize) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        if self.nodes[0].level != self.depth || self.nodes[0].parent != usize::MAX {
            return Err("node 0 is not a root at level D".into());
        }
        let mut seen_points = vec![false; num_points];
        for (i, n) in self.nodes.iter().enumerate() {
            for (ci, &ch) in n.children.iter().enumerate() {
                let child = &self.nodes[ch];
                if child.parent != i {
                    return Err(format!("child {ch} of {i} has wrong parent"));
                }
                if child.child_index as usize != ci {
                    return Err(format!("child {ch} of {i} has wrong child_index"));
                }
                if child.level + 1 != n.level {
                    return Err(format!("child {ch} of {i} skips a level"));
                }
            }
            match (n.level, n.point) {
                (0, Some(p)) => {
                    if seen_points[p] {
                        return Err(format!("point {p} has two leaves"));
                    }
                    seen_points[p] = true;
                    if !n.children.is_empty() {
                        return Err(format!("leaf {i} has children"));
                    }
                }
                (0, None) => return Err(format!("level-0 node {i} has no point")),
                (_, Some(_)) => return Err(format!("internal node {i} has a point")),
                (_, None) => {
                    if n.children.is_empty() {
                        return Err(format!("internal node {i} has no children"));
                    }
                }
            }
        }
        if !seen_points.iter().all(|&b| b) {
            return Err("some point has no leaf".into());
        }
        Ok(())
    }
}

/// Fixed construction parameters, exposed so tests and worked examples (the
/// paper's Example 1) can pin the randomness.
#[derive(Debug, Clone)]
pub struct FixedDraw {
    /// Radius factor β ∈ [1/2, 1).
    pub beta: f64,
    /// Permutation π of all point ids.
    pub permutation: Vec<PointId>,
}

/// Runs Alg. 1 with randomness drawn from `rng`.
///
/// `O(N²·D)` time, `O(N·D)` transient memory.
pub fn build_raw<R: Rng + ?Sized>(points: &PointSet, rng: &mut R) -> RawTree {
    let mut permutation: Vec<PointId> = (0..points.len()).collect();
    permutation.shuffle(rng);
    // β ∈ [1/2, 1): the half-open upper end guarantees the level-0 radius is
    // strictly below the (scaled) minimum pairwise distance, so level-0
    // clusters are singletons. The paper samples from [1/2, 1]; the endpoint
    // has probability zero, so the distributions coincide.
    let beta = rng.gen_range(0.5..1.0);
    build_raw_fixed(points, FixedDraw { beta, permutation })
}

/// Runs Alg. 1 with pinned randomness. Panics if `beta ∉ [1/2, 1)` or the
/// permutation is not a permutation of `0..N`.
pub fn build_raw_fixed(points: &PointSet, draw: FixedDraw) -> RawTree {
    let n = points.len();
    assert!(
        (0.5..1.0).contains(&draw.beta),
        "beta must lie in [1/2, 1), got {}",
        draw.beta
    );
    assert_eq!(draw.permutation.len(), n, "permutation length mismatch");
    {
        let mut seen = vec![false; n];
        for &p in &draw.permutation {
            assert!(p < n && !seen[p], "invalid permutation");
            seen[p] = true;
        }
    }
    assert!(
        points.all_distinct(),
        "predefined points must be pairwise distinct so each gets its own leaf"
    );

    // Scale the metric so the minimum pairwise distance is >= 1 (required for
    // singleton separation at level 0). Sets that already satisfy this are
    // left untouched, matching the paper's worked example exactly.
    let scale = match points.min_distance() {
        Some(d) if d < 1.0 => d,
        _ => 1.0,
    };
    let dist = |a: PointId, b: PointId| points.dist(a, b) / scale;

    // D = ceil(log2(2 * diameter)), at least 1.
    let diameter = points.diameter() / scale;
    let depth = if diameter <= 0.0 {
        1
    } else {
        (2.0 * diameter).log2().ceil().max(1.0) as u32
    };

    let root = RawNode {
        level: depth,
        parent: usize::MAX,
        child_index: 0,
        children: Vec::new(),
        point: None,
    };
    let mut nodes = vec![root];
    // Clusters at the current level, as (node index, member point ids).
    let mut frontier: Vec<(usize, Vec<PointId>)> = vec![(0, (0..n).collect())];

    for i in (0..depth).rev() {
        let radius = draw.beta * (1u64 << i) as f64;
        let mut next = Vec::with_capacity(frontier.len());
        for (node_idx, members) in frontier {
            if members.len() == 1 {
                // Singleton clusters pass straight down one level; the ball
                // around the point itself would reproduce this split.
                let child_index = nodes[node_idx].children.len() as u32;
                let child = RawNode {
                    level: i,
                    parent: node_idx,
                    child_index,
                    children: Vec::new(),
                    point: (i == 0).then(|| members[0]),
                };
                let ci = nodes.len();
                nodes.push(child);
                nodes[node_idx].children.push(ci);
                next.push((ci, members));
                continue;
            }
            let mut remaining = members;
            // Sweep centers in permutation order; each ball claims the still
            // unassigned members within `radius` (lines 8-13 of Alg. 1).
            for &center in &draw.permutation {
                if remaining.is_empty() {
                    break;
                }
                let (claimed, rest): (Vec<_>, Vec<_>) = remaining
                    .into_iter()
                    .partition(|&u| dist(u, center) <= radius);
                remaining = rest;
                if claimed.is_empty() {
                    continue;
                }
                let child_index = nodes[node_idx].children.len() as u32;
                let child = RawNode {
                    level: i,
                    parent: node_idx,
                    child_index,
                    children: Vec::new(),
                    point: (i == 0 && claimed.len() == 1).then(|| claimed[0]),
                };
                let ci = nodes.len();
                nodes.push(child);
                nodes[node_idx].children.push(ci);
                next.push((ci, claimed));
            }
            debug_assert!(remaining.is_empty(), "ball sweep must cover the cluster");
        }
        frontier = next;
    }

    let mut leaf_of = vec![usize::MAX; n];
    for (node_idx, members) in &frontier {
        assert_eq!(
            members.len(),
            1,
            "level-0 cluster not a singleton; metric scaling is broken"
        );
        leaf_of[members[0]] = *node_idx;
        debug_assert_eq!(nodes[*node_idx].point, Some(members[0]));
    }

    let tree = RawTree {
        nodes,
        leaf_of,
        depth,
        beta: draw.beta,
        permutation: draw.permutation,
        scale,
    };
    debug_assert_eq!(tree.validate(n), Ok(()));
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Point};

    /// The paper's Example 1 point set.
    fn example1() -> PointSet {
        PointSet::new(vec![
            Point::new(1.0, 1.0), // o1
            Point::new(2.0, 3.0), // o2
            Point::new(5.0, 3.0), // o3
            Point::new(4.0, 4.0), // o4
        ])
    }

    fn example1_tree() -> RawTree {
        build_raw_fixed(
            &example1(),
            FixedDraw {
                beta: 0.5,
                permutation: vec![0, 1, 2, 3],
            },
        )
    }

    #[test]
    fn example1_has_depth_4() {
        // D = ceil(log2(2 * d(o1,o3))) = ceil(log2(2*sqrt(20))) = 4.
        let t = example1_tree();
        assert_eq!(t.depth, 4);
        assert_eq!(t.scale, 1.0, "example metric needs no rescaling");
    }

    #[test]
    fn example1_splits_match_figure_2() {
        let t = example1_tree();
        t.validate(4).unwrap();
        // The first split happens at level 3 (radius r_3 = 4): V splits into
        // {o1,o2} (ball around o1) and {o3,o4} (ball around o2), exactly the
        // red circles of the paper's Fig. 2a.
        let root = &t.nodes[0];
        assert_eq!(root.level, 4);
        assert_eq!(root.children.len(), 2, "split into {{o1,o2}} and {{o3,o4}}");
        // First child claims o1's group (permutation starts at o1).
        let g1 = &t.nodes[root.children[0]];
        let g2 = &t.nodes[root.children[1]];
        assert_eq!(g1.level, 3);
        // {o1,o2} splits at level 2 (radius 2): two children.
        assert_eq!(g1.children.len(), 2);
        // {o3,o4} stays together at level 2 (ball around o3 radius 2 covers
        // o4 at distance sqrt(2)), then splits at level 1 (radius 1).
        assert_eq!(g2.children.len(), 1);
        let g2l2 = &t.nodes[g2.children[0]];
        assert_eq!(g2l2.children.len(), 2);
        assert_eq!(t.max_branching(), 2, "Example 1 yields a binary tree");
    }

    #[test]
    fn example1_leaves_are_all_points() {
        let t = example1_tree();
        for p in 0..4 {
            let leaf = &t.nodes[t.leaf_of[p]];
            assert_eq!(leaf.level, 0);
            assert_eq!(leaf.point, Some(p));
        }
    }

    #[test]
    fn random_construction_is_valid_for_many_seeds() {
        let ps = PointSet::new(
            (0..40)
                .map(|i| Point::new((i % 8) as f64 * 3.0, (i / 8) as f64 * 5.0))
                .collect(),
        );
        for seed in 0..10 {
            let mut rng = seeded_rng(seed, 0);
            let t = build_raw(&ps, &mut rng);
            t.validate(40).unwrap();
            assert!(t.depth >= 1);
            assert!(t.max_branching() >= 1);
        }
    }

    #[test]
    fn sub_unit_metric_is_rescaled() {
        let ps = PointSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.25, 0.0),
            Point::new(0.6, 0.0),
        ]);
        let mut rng = seeded_rng(7, 0);
        let t = build_raw(&ps, &mut rng);
        assert!((t.scale - 0.25).abs() < 1e-12);
        t.validate(3).unwrap();
    }

    #[test]
    fn two_identical_coordinates_rejected() {
        let ps = PointSet::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        let mut rng = seeded_rng(0, 0);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| build_raw(&ps, &mut rng)));
        assert!(result.is_err());
    }

    #[test]
    fn singleton_set_builds_trivial_tree() {
        let ps = PointSet::new(vec![Point::new(3.0, 3.0)]);
        let mut rng = seeded_rng(0, 0);
        let t = build_raw(&ps, &mut rng);
        assert_eq!(t.depth, 1);
        t.validate(1).unwrap();
        assert_eq!(t.nodes[t.leaf_of[0]].level, 0);
    }

    #[test]
    fn cluster_diameters_respect_level_radius() {
        // Every level-i cluster is contained in a ball of radius β·2^i, so
        // its (scaled) diameter is at most 2·β·2^i < 2^{i+1}.
        let ps = PointSet::new(
            (0..30)
                .map(|i| Point::new((i * 17 % 41) as f64, (i * 29 % 37) as f64))
                .collect(),
        );
        let mut rng = seeded_rng(3, 1);
        let t = build_raw(&ps, &mut rng);
        // Recover members of every node by walking up from the leaves.
        let mut members: Vec<Vec<PointId>> = vec![Vec::new(); t.nodes.len()];
        for p in 0..ps.len() {
            let mut v = t.leaf_of[p];
            loop {
                members[v].push(p);
                if v == 0 {
                    break;
                }
                v = t.nodes[v].parent;
            }
        }
        for (idx, node) in t.nodes.iter().enumerate() {
            let m = &members[idx];
            for i in 0..m.len() {
                for j in (i + 1)..m.len() {
                    let d = ps.dist(m[i], m[j]) / t.scale;
                    assert!(
                        d <= 2.0 * t.beta * (1u64 << node.level) as f64 + 1e-9,
                        "cluster at level {} has diameter {d}",
                        node.level
                    );
                }
            }
        }
    }
}
