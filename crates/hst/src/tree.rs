//! The complete c-ary HST with virtual fake nodes.

use crate::code::{CodeContext, LeafCode};
use crate::construct::{build_raw, build_raw_fixed, FixedDraw, RawTree};
use pombm_geom::{Point, PointId, PointSet};
use rand::Rng;
use std::collections::HashMap;

/// Construction parameters for [`Hst::build_with`].
#[derive(Debug, Clone, Default)]
pub struct HstParams {
    /// Pin the radius factor β and the permutation π (used by tests and the
    /// paper's worked example). `None` draws them from the RNG.
    pub fixed: Option<FixedDraw>,
    /// Force a branching factor for the completion step. Must be at least
    /// the real tree's maximum branching. `None` uses
    /// `max(2, max_branching)`, the paper's "maximum number of branches".
    pub branching: Option<u32>,
}

/// A complete c-ary Hierarchically Well-Separated Tree over a predefined
/// point set.
///
/// This is the structure the server publishes in step 1 of the paper's
/// workflow (Fig. 1). It combines:
///
/// * the *real* HST produced by Alg. 1 ([`RawTree`], kept for inspection),
/// * the *complete-tree view*: every internal node conceptually has exactly
///   `c` children; the added "fake" subtrees exist only as unoccupied
///   [`LeafCode`]s. All mechanism and matching logic works on codes, so the
///   `c^D` completion cost of the naive algorithm in the paper is avoided
///   entirely (memory stays `O(N·D)`).
///
/// Distances returned by [`Hst::tree_dist`] are in the original metric's
/// units (tree units × the construction scale), so they are directly
/// comparable across trees built over differently scaled point sets.
#[derive(Debug, Clone)]
pub struct Hst {
    raw: RawTree,
    ctx: CodeContext,
    points: PointSet,
    /// `leaf_code[p]` is the complete-tree code of point `p`'s leaf.
    leaf_code: Vec<LeafCode>,
    /// Inverse mapping for real leaves.
    // lint: allow(DET-HASH) — code-to-point lookups only; never iterated.
    point_of: HashMap<LeafCode, PointId>,
    /// Representative real point per occupied virtual node, keyed by
    /// `(level, prefix)`: the lowest-id point whose leaf lies beneath.
    // lint: allow(DET-HASH) — per-node lookups only; never iterated.
    representative: HashMap<(u32, u64), PointId>,
}

impl Hst {
    /// Builds an HST over `points` with randomness from `rng` (Alg. 1 plus
    /// virtual completion).
    pub fn build<R: Rng + ?Sized>(points: &PointSet, rng: &mut R) -> Self {
        let raw = build_raw(points, rng);
        Self::from_raw(raw, points.clone(), None)
    }

    /// Builds a *deterministic* quadtree HST over `points` (the ablation
    /// construction; see [`crate::quadtree`]).
    pub fn from_quadtree(points: &PointSet) -> Self {
        let raw = crate::quadtree::build_quadtree(points);
        Self::from_raw(raw, points.clone(), None)
    }

    /// Quadtree construction with explicit completion parameters.
    /// `params.fixed` is ignored — the quadtree has no randomness to pin.
    pub fn from_quadtree_with(points: &PointSet, params: HstParams) -> Self {
        let raw = crate::quadtree::build_quadtree(points);
        Self::from_raw(raw, points.clone(), params.branching)
    }

    /// Builds an HST with explicit parameters; see [`HstParams`].
    pub fn build_with<R: Rng + ?Sized>(points: &PointSet, params: HstParams, rng: &mut R) -> Self {
        let raw = match params.fixed {
            Some(draw) => build_raw_fixed(points, draw),
            None => build_raw(points, rng),
        };
        Self::from_raw(raw, points.clone(), params.branching)
    }

    fn from_raw(raw: RawTree, points: PointSet, branching: Option<u32>) -> Self {
        let natural = raw.max_branching().max(2);
        let c = match branching {
            Some(c) => {
                assert!(
                    c >= natural,
                    "requested branching {c} below the tree's natural branching {natural}"
                );
                c
            }
            None => natural,
        };
        let ctx = CodeContext::new(c, raw.depth);

        // A real leaf's code concatenates the child indices on the
        // root-to-leaf path, most significant digit first.
        let mut leaf_code = vec![LeafCode(0); points.len()];
        // lint: allow(DET-HASH) — see the field note: lookups only.
        let mut point_of = HashMap::with_capacity(points.len());
        for (p, code) in leaf_code.iter_mut().enumerate() {
            let mut digits = vec![0u32; raw.depth as usize];
            let mut v = raw.leaf_of[p];
            while raw.nodes[v].parent != usize::MAX {
                let node = &raw.nodes[v];
                digits[node.level as usize] = node.child_index;
                v = node.parent;
            }
            // digits[j] is the branch from level j+1 down to level j, which
            // is exactly the base-c digit at position j.
            let mut value = 0u64;
            for j in (0..raw.depth).rev() {
                value = value * c as u64 + digits[j as usize] as u64;
            }
            *code = LeafCode(value);
            let prev = point_of.insert(LeafCode(value), p);
            assert!(prev.is_none(), "two points share a leaf code");
        }

        // Representatives: for every ancestor prefix of every real leaf,
        // remember the lowest-id resident point. Fake leaves inherit the
        // representative of their lowest ancestor that contains real leaves.
        // lint: allow(DET-HASH) — see the field note: lookups only.
        let mut representative: HashMap<(u32, u64), PointId> = HashMap::new();
        for (p, &code) in leaf_code.iter().enumerate() {
            for level in 0..=ctx.depth {
                let key = (level, ctx.ancestor(code, level));
                representative
                    .entry(key)
                    .and_modify(|cur| *cur = (*cur).min(p))
                    .or_insert(p);
            }
        }

        Hst {
            raw,
            ctx,
            points,
            leaf_code,
            point_of,
            representative,
        }
    }

    /// The code-arithmetic context `(c, D)` of the complete tree.
    #[inline]
    pub fn ctx(&self) -> CodeContext {
        self.ctx
    }

    /// Branching factor `c` of the complete tree.
    #[inline]
    pub fn branching(&self) -> u32 {
        self.ctx.branching
    }

    /// Depth `D` (root level).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.ctx.depth
    }

    /// Number of predefined points `N`.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of leaves `c^D` of the complete tree (real + fake).
    #[inline]
    pub fn num_leaves(&self) -> u64 {
        self.ctx.num_leaves()
    }

    /// The predefined point set the tree was built over.
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The underlying real (pre-completion) tree.
    #[inline]
    pub fn raw(&self) -> &RawTree {
        &self.raw
    }

    /// Metric scale divisor applied before construction.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.raw.scale
    }

    /// Leaf code of predefined point `p`.
    #[inline]
    pub fn leaf_of(&self, p: PointId) -> LeafCode {
        self.leaf_code[p]
    }

    /// The predefined point occupying leaf `code`, or `None` for fake leaves.
    #[inline]
    pub fn point_of(&self, code: LeafCode) -> Option<PointId> {
        self.point_of.get(&code).copied()
    }

    /// Returns `true` iff `code` is a real (non-fake) leaf.
    #[inline]
    pub fn is_real(&self, code: LeafCode) -> bool {
        self.point_of.contains_key(&code)
    }

    /// The real point standing in for a (possibly fake) leaf: the leaf's own
    /// point if real, otherwise the lowest-id point under the leaf's lowest
    /// ancestor that contains real leaves. Every code resolves (the root
    /// covers all points), and the representative's distance to the true
    /// position is bounded by the ancestor cluster's diameter.
    pub fn representative(&self, code: LeafCode) -> PointId {
        for level in 0..=self.ctx.depth {
            let key = (level, self.ctx.ancestor(code, level));
            if let Some(&p) = self.representative.get(&key) {
                return p;
            }
        }
        unreachable!("the root always has a representative")
    }

    /// Euclidean coordinates of [`Hst::representative`].
    pub fn representative_point(&self, code: LeafCode) -> Point {
        self.points.point(self.representative(code))
    }

    /// Maps an arbitrary Euclidean location to the leaf of its nearest
    /// predefined point (step 2/3 of the paper's workflow). `O(N)`; callers
    /// with grid-shaped point sets should use
    /// [`pombm_geom::Grid::nearest`] + [`Hst::leaf_of`] for O(1).
    pub fn snap(&self, location: &Point) -> LeafCode {
        self.leaf_of(self.points.nearest(location))
    }

    /// Level of the lowest common ancestor of two leaves.
    #[inline]
    pub fn lca_level(&self, a: LeafCode, b: LeafCode) -> u32 {
        self.ctx.lca_level(a, b)
    }

    /// Tree distance between two leaves in original-metric units.
    #[inline]
    pub fn tree_dist(&self, a: LeafCode, b: LeafCode) -> f64 {
        self.ctx.tree_dist_units(a, b) as f64 * self.raw.scale
    }

    /// Tree distance in raw tree units (`2^{l+2} - 4`).
    #[inline]
    pub fn tree_dist_units(&self, a: LeafCode, b: LeafCode) -> u64 {
        self.ctx.tree_dist_units(a, b)
    }

    /// Checks the HST domination property `d(u,v) ≤ d_T(u,v)` for all pairs
    /// of predefined points. `O(N²·D)`; intended for tests.
    pub fn validate_domination(&self) -> Result<(), String> {
        for a in 0..self.points.len() {
            for b in (a + 1)..self.points.len() {
                let d = self.points.dist(a, b);
                let dt = self.tree_dist(self.leaf_of(a), self.leaf_of(b));
                if dt + 1e-9 < d {
                    return Err(format!(
                        "tree distance {dt} below metric distance {d} for points {a},{b}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pombm_geom::{seeded_rng, Grid, Rect};

    fn example1_points() -> PointSet {
        PointSet::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 3.0),
            Point::new(5.0, 3.0),
            Point::new(4.0, 4.0),
        ])
    }

    /// The pinned Example 1 tree (β = 1/2, π = <o1, o2, o3, o4>).
    pub(crate) fn example1_hst() -> Hst {
        let mut rng = seeded_rng(0, 0);
        Hst::build_with(
            &example1_points(),
            HstParams {
                fixed: Some(FixedDraw {
                    beta: 0.5,
                    permutation: vec![0, 1, 2, 3],
                }),
                branching: None,
            },
            &mut rng,
        )
    }

    #[test]
    fn example1_complete_tree_shape() {
        let t = example1_hst();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.branching(), 2);
        assert_eq!(t.num_leaves(), 16, "complete binary tree of depth 4");
        assert_eq!(t.num_points(), 4);
    }

    #[test]
    fn example1_tree_distances_match_table1_levels() {
        let t = example1_hst();
        let o1 = t.leaf_of(0);
        let o2 = t.leaf_of(1);
        let o3 = t.leaf_of(2);
        let o4 = t.leaf_of(3);
        // From Table I: o2 is in L_3(o1); o3, o4 are in L_4(o1).
        assert_eq!(t.lca_level(o1, o2), 3);
        assert_eq!(t.lca_level(o1, o3), 4);
        assert_eq!(t.lca_level(o1, o4), 4);
        // o3 and o4 ride together until their level-2 cluster splits into
        // level-1 children, so their LCA is at level 2.
        assert_eq!(t.lca_level(o3, o4), 2);
        // Distances: 2^{l+2} - 4.
        assert_eq!(t.tree_dist_units(o1, o2), 28);
        assert_eq!(t.tree_dist_units(o1, o3), 60);
        assert_eq!(t.tree_dist_units(o3, o4), 12);
    }

    #[test]
    fn real_leaves_roundtrip() {
        let t = example1_hst();
        for p in 0..t.num_points() {
            let code = t.leaf_of(p);
            assert!(t.is_real(code));
            assert_eq!(t.point_of(code), Some(p));
        }
    }

    #[test]
    fn fake_leaves_exist_and_are_not_real() {
        let t = example1_hst();
        let real: Vec<u64> = (0..4).map(|p| t.leaf_of(p).0).collect();
        let fake_count = (0..16).filter(|v| !real.contains(v)).count();
        assert_eq!(fake_count, 12, "12 fake leaves in the complete tree");
        for v in 0..16u64 {
            let code = LeafCode(v);
            assert_eq!(t.is_real(code), real.contains(&v));
        }
    }

    #[test]
    fn snap_maps_to_nearest_point_leaf() {
        let t = example1_hst();
        // A location nearest to o3(5,3).
        assert_eq!(t.snap(&Point::new(5.1, 2.9)), t.leaf_of(2));
        // A location nearest to o1(1,1).
        assert_eq!(t.snap(&Point::new(0.0, 0.0)), t.leaf_of(0));
    }

    #[test]
    fn domination_holds_on_example1() {
        example1_hst().validate_domination().unwrap();
    }

    #[test]
    fn domination_holds_on_random_grids() {
        let grid = Grid::square(Rect::square(100.0), 6);
        let ps = grid.to_point_set();
        for seed in 0..5 {
            let mut rng = seeded_rng(seed, 2);
            let t = Hst::build(&ps, &mut rng);
            t.validate_domination().unwrap();
        }
    }

    #[test]
    fn expected_stretch_is_logarithmic() {
        // E[d_T(u,v)] <= O(log N) d(u,v): check the empirical average stretch
        // over random trees stays well below a generous bound.
        let grid = Grid::square(Rect::square(64.0), 8);
        let ps = grid.to_point_set();
        let n = ps.len();
        let trees: Vec<Hst> = (0..30)
            .map(|seed| {
                let mut rng = seeded_rng(seed, 3);
                Hst::build(&ps, &mut rng)
            })
            .collect();
        let mut worst_avg_stretch = 0.0f64;
        for a in 0..n {
            for b in (a + 1)..n {
                let d = ps.dist(a, b);
                let avg: f64 = trees
                    .iter()
                    .map(|t| t.tree_dist(t.leaf_of(a), t.leaf_of(b)))
                    .sum::<f64>()
                    / trees.len() as f64;
                worst_avg_stretch = worst_avg_stretch.max(avg / d);
            }
        }
        // log2(64) = 6; FRT guarantees O(log N) with a modest constant. A
        // bound of 16·log2(N) is far above anything a correct construction
        // produces but catches gross errors (e.g. wrong edge lengths).
        let bound = 16.0 * (n as f64).log2();
        assert!(
            worst_avg_stretch < bound,
            "avg stretch {worst_avg_stretch} exceeds {bound}"
        );
    }

    #[test]
    fn representative_of_real_leaf_is_itself() {
        let t = example1_hst();
        for p in 0..t.num_points() {
            assert_eq!(t.representative(t.leaf_of(p)), p);
        }
    }

    #[test]
    fn representative_of_fake_leaf_is_a_tree_neighbour() {
        let t = example1_hst();
        for v in 0..t.num_leaves() {
            let code = LeafCode(v);
            let rep = t.representative(code);
            // The representative's leaf shares the lowest occupied ancestor
            // with the query, so no real leaf can be strictly closer on the
            // tree than the representative's ancestor level allows.
            let rep_level = t.lca_level(code, t.leaf_of(rep));
            for p in 0..t.num_points() {
                assert!(
                    t.lca_level(code, t.leaf_of(p)) >= rep_level,
                    "point {p} is closer to {code} than its representative {rep}"
                );
            }
        }
    }

    #[test]
    fn forced_branching_widens_tree() {
        let mut rng = seeded_rng(1, 0);
        let t = Hst::build_with(
            &example1_points(),
            HstParams {
                fixed: Some(FixedDraw {
                    beta: 0.5,
                    permutation: vec![0, 1, 2, 3],
                }),
                branching: Some(4),
            },
            &mut rng,
        );
        assert_eq!(t.branching(), 4);
        assert_eq!(t.num_leaves(), 256);
        // Real-leaf relationships are unchanged by completion width.
        assert_eq!(t.lca_level(t.leaf_of(0), t.leaf_of(1)), 3);
    }

    #[test]
    #[should_panic(expected = "below the tree's natural branching")]
    fn too_small_forced_branching_panics() {
        let mut rng = seeded_rng(1, 0);
        let grid = Grid::square(Rect::square(100.0), 5);
        // A 25-point grid will have some node with more than 2 children for
        // most draws; to make the panic deterministic, force branching 2
        // while requiring at least one wider split.
        for seed in 0..50 {
            let mut r = seeded_rng(seed, 9);
            let raw = crate::construct::build_raw(&grid.to_point_set(), &mut r);
            if raw.max_branching() > 2 {
                let _ = Hst::build_with(
                    &grid.to_point_set(),
                    HstParams {
                        fixed: Some(FixedDraw {
                            beta: raw.beta,
                            permutation: raw.permutation.clone(),
                        }),
                        branching: Some(2),
                    },
                    &mut rng,
                );
                return; // the call above must panic
            }
        }
        panic!("below the tree's natural branching (no wide tree found, vacuous)");
    }
}
