//! Dynamic nearest-leaf index over the complete HST.

use crate::code::{CodeContext, LeafCode};
use std::collections::HashMap;

/// A dynamic multiset of complete-tree leaves supporting *nearest-leaf*
/// queries in `O(c·D)`.
///
/// The paper's HST-greedy algorithm (Alg. 4) scans all unassigned workers for
/// every arriving task, `O(n·D)` per task. Because the HST metric is an
/// ultrametric determined entirely by LCA levels, the nearest available
/// worker can instead be found by walking up from the task's leaf and, at the
/// first ancestor whose subtree holds a worker outside the already-searched
/// child, walking down through occupied children. This index maintains the
/// per-(virtual-)node occupancy counts that make the walk possible.
///
/// Node keys are `(level, prefix)` where `prefix = code / c^level`; only
/// nodes on inserted leaves' root paths are stored, so memory is
/// `O(inserted · D)` regardless of `c^D`.
#[derive(Debug, Clone)]
pub struct SubtreeCounter {
    ctx: CodeContext,
    /// Occupancy count per visited virtual node, keyed by (level, prefix).
    // lint: allow(DET-HASH) — per-key lookups on the hot assign path; the
    // map is never iterated.
    counts: HashMap<(u32, u64), u32>,
    /// Total number of leaves currently in the multiset (with multiplicity).
    len: usize,
}

impl SubtreeCounter {
    /// Creates an empty index for trees with context `ctx`.
    pub fn new(ctx: CodeContext) -> Self {
        SubtreeCounter {
            ctx,
            // lint: allow(DET-HASH) — see the field note: lookups only.
            counts: HashMap::new(),
            len: 0,
        }
    }

    /// Number of leaves currently stored (counting multiplicity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Multiplicity of a specific leaf.
    pub fn count(&self, code: LeafCode) -> u32 {
        *self.counts.get(&(0, code.0)).unwrap_or(&0)
    }

    /// Inserts one occurrence of `code`.
    ///
    /// # Panics
    ///
    /// Panics if the code does not belong to the tree.
    pub fn insert(&mut self, code: LeafCode) {
        assert!(self.ctx.contains(code), "code outside tree");
        for level in 0..=self.ctx.depth {
            *self
                .counts
                .entry((level, self.ctx.ancestor(code, level)))
                .or_insert(0) += 1;
        }
        self.len += 1;
    }

    /// Removes one occurrence of `code`. Returns `false` (and changes
    /// nothing) if the leaf is not present.
    pub fn remove(&mut self, code: LeafCode) -> bool {
        if self.count(code) == 0 {
            return false;
        }
        for level in 0..=self.ctx.depth {
            let key = (level, self.ctx.ancestor(code, level));
            let entry = self.counts.get_mut(&key).expect("inconsistent counts");
            *entry -= 1;
            if *entry == 0 {
                self.counts.remove(&key);
            }
        }
        self.len -= 1;
        true
    }

    /// The code-arithmetic context this index was built for.
    #[inline]
    pub fn ctx(&self) -> CodeContext {
        self.ctx
    }

    /// Occupancy of the virtual node `(level, prefix)`: how many stored
    /// leaves lie in that node's subtree. Level `0` nodes are leaves
    /// themselves. Public so callers can implement alternative descent
    /// policies (e.g. the randomized matchers) on top of the same counts.
    #[inline]
    pub fn node_count_at(&self, level: u32, prefix: u64) -> u32 {
        *self.counts.get(&(level, prefix)).unwrap_or(&0)
    }

    fn node_count(&self, level: u32, prefix: u64) -> u32 {
        self.node_count_at(level, prefix)
    }

    /// Finds a stored leaf at minimum tree distance from `query`.
    ///
    /// Ties (same LCA level) are broken toward the smallest child index on
    /// the downward walk, i.e. deterministically. Returns `None` if empty.
    pub fn nearest(&self, query: LeafCode) -> Option<LeafCode> {
        if self.is_empty() {
            return None;
        }
        // A leaf at the query position itself has distance 0.
        if self.count(query) > 0 {
            return Some(query);
        }
        // Walk upward: the first ancestor level l whose subtree count
        // exceeds the already-searched child's count holds the nearest leaf
        // (LCA level exactly l, distance 2^{l+2} - 4).
        for level in 1..=self.ctx.depth {
            let anc = self.ctx.ancestor(query, level);
            let searched_child = self.ctx.ancestor(query, level - 1);
            if self.node_count(level, anc) > self.node_count(level - 1, searched_child) {
                return Some(self.descend(level, anc, Some(searched_child)));
            }
        }
        unreachable!("non-empty index must yield a nearest leaf")
    }

    /// Descends from node `(level, prefix)` to any stored leaf, skipping the
    /// child with prefix `skip` (the subtree already known not to contain the
    /// answer) at the first step.
    fn descend(&self, mut level: u32, mut prefix: u64, mut skip: Option<u64>) -> LeafCode {
        let c = self.ctx.branching as u64;
        while level > 0 {
            let mut advanced = false;
            for j in 0..c {
                let child = prefix * c + j;
                if Some(child) == skip {
                    continue;
                }
                if self.node_count(level - 1, child) > 0 {
                    prefix = child;
                    level -= 1;
                    advanced = true;
                    break;
                }
            }
            assert!(advanced, "count invariant violated during descent");
            skip = None;
        }
        LeafCode(prefix)
    }

    /// Removes and returns a nearest leaf in one step; the common pattern in
    /// greedy matching.
    pub fn take_nearest(&mut self, query: LeafCode) -> Option<LeafCode> {
        let found = self.nearest(query)?;
        let removed = self.remove(found);
        debug_assert!(removed);
        Some(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CodeContext {
        CodeContext::new(2, 4)
    }

    /// Brute-force reference: nearest by scanning a vector.
    fn brute_nearest(ctx: &CodeContext, stored: &[u64], query: u64) -> Option<u64> {
        stored
            .iter()
            .copied()
            .min_by_key(|&s| (ctx.tree_dist_units(LeafCode(s), LeafCode(query)), s))
    }

    #[test]
    fn empty_index_returns_none() {
        let idx = SubtreeCounter::new(ctx());
        assert_eq!(idx.nearest(LeafCode(3)), None);
        assert!(idx.is_empty());
    }

    #[test]
    fn exact_hit_has_distance_zero() {
        let mut idx = SubtreeCounter::new(ctx());
        idx.insert(LeafCode(5));
        assert_eq!(idx.nearest(LeafCode(5)), Some(LeafCode(5)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut idx = SubtreeCounter::new(ctx());
        idx.insert(LeafCode(3));
        idx.insert(LeafCode(3));
        assert_eq!(idx.count(LeafCode(3)), 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(LeafCode(3)));
        assert_eq!(idx.count(LeafCode(3)), 1);
        assert!(idx.remove(LeafCode(3)));
        assert!(!idx.remove(LeafCode(3)), "third removal must fail");
        assert!(idx.is_empty());
        // Internal map fully cleaned up.
        assert!(idx.counts.is_empty());
    }

    #[test]
    fn nearest_matches_brute_force_binary() {
        let c = ctx();
        let stored = [0u64, 3, 9, 14, 15];
        let mut idx = SubtreeCounter::new(c);
        for &s in &stored {
            idx.insert(LeafCode(s));
        }
        for q in 0..16u64 {
            let got = idx.nearest(LeafCode(q)).unwrap().0;
            let want_dist = c.tree_dist_units(
                LeafCode(brute_nearest(&c, &stored, q).unwrap()),
                LeafCode(q),
            );
            let got_dist = c.tree_dist_units(LeafCode(got), LeafCode(q));
            assert_eq!(got_dist, want_dist, "query {q}: got leaf {got}");
            assert!(stored.contains(&got));
        }
    }

    #[test]
    fn nearest_matches_brute_force_ternary() {
        let c = CodeContext::new(3, 3);
        let stored = [1u64, 7, 13, 26, 26];
        let mut idx = SubtreeCounter::new(c);
        for &s in &stored {
            idx.insert(LeafCode(s));
        }
        for q in 0..27u64 {
            let got = idx.nearest(LeafCode(q)).unwrap().0;
            let want = brute_nearest(&c, &stored, q).unwrap();
            assert_eq!(
                c.tree_dist_units(LeafCode(got), LeafCode(q)),
                c.tree_dist_units(LeafCode(want), LeafCode(q)),
                "query {q}"
            );
        }
    }

    #[test]
    fn take_nearest_depletes_in_distance_order() {
        let c = ctx();
        let mut idx = SubtreeCounter::new(c);
        for s in [0u64, 1, 8] {
            idx.insert(LeafCode(s));
        }
        // Query 0: distance 0 leaf first, then its level-1 sibling, then the
        // far side of the root.
        assert_eq!(idx.take_nearest(LeafCode(0)), Some(LeafCode(0)));
        assert_eq!(idx.take_nearest(LeafCode(0)), Some(LeafCode(1)));
        assert_eq!(idx.take_nearest(LeafCode(0)), Some(LeafCode(8)));
        assert_eq!(idx.take_nearest(LeafCode(0)), None);
    }

    #[test]
    fn multiplicity_survives_take() {
        let c = ctx();
        let mut idx = SubtreeCounter::new(c);
        idx.insert(LeafCode(6));
        idx.insert(LeafCode(6));
        assert_eq!(idx.take_nearest(LeafCode(6)), Some(LeafCode(6)));
        assert_eq!(idx.take_nearest(LeafCode(6)), Some(LeafCode(6)));
        assert_eq!(idx.take_nearest(LeafCode(6)), None);
    }

    #[test]
    #[should_panic(expected = "outside tree")]
    fn inserting_foreign_code_panics() {
        let mut idx = SubtreeCounter::new(ctx());
        idx.insert(LeafCode(16));
    }
}
