//! Minimal offline stand-in for `criterion`: enough API surface
//! ([`Criterion`], benchmark groups, [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], the `criterion_group!`/`criterion_main!` macros) to
//! compile and run this workspace's benches as plain wall-clock timers.
//! No statistics, plots or comparisons — just a warmed-up mean per bench,
//! printed to stdout.

// lint: allow-file(DET-TIME) — wall-clock measurement is this shim's whole
// purpose; bench timings are reported, never fingerprinted.

use std::time::{Duration, Instant};

/// Re-exported from `std::hint`; prevents the optimizer from deleting the
/// benchmarked expression.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Mean time per iteration of the last [`iter`](Bencher::iter) run.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a few warmed-up iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        // Choose an iteration count targeting ~50 ms of measurement,
        // bounded to keep pathological cases short.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(50).as_nanos() / probe.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim ignores sample-count tuning.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores measurement tuning.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
    println!(
        "bench {group}/{}: {} ns/iter ({} iters)",
        id.text, per_iter, bencher.iters
    );
}

/// Benchmark driver with criterion's API shape.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), |b| f(b));
        self
    }
}

/// Declares a group-runner function calling each bench target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
