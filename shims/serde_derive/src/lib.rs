//! Derive macros for the in-repo `serde` shim.
//!
//! Supports the type shapes this workspace derives — named-field structs,
//! newtype/tuple structs, and enums whose variants are unit, newtype,
//! tuple or struct-like — with serde's externally-tagged representation.
//! Generic type parameters are not supported (nothing in the workspace
//! uses them); encountering them is a compile-time panic rather than
//! silent misbehavior.
//!
//! One field attribute is honored, on named struct fields only:
//! `#[serde(skip_serializing_if = "Option::is_none")]` omits the field
//! from the serialized object when it is `None` (deserialization of a
//! missing field already yields `None` through `Deserialize::missing`).
//! Optional columns — e.g. the sweep engine's `--timings` wall-clock —
//! can then ride on golden-pinned JSON shapes without perturbing them.
//!
//! Implementation note: without `syn`/`quote` (the container is offline),
//! the input item is parsed directly from the `proc_macro` token stream
//! and the generated impl is assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(skip_serializing_if = "Option::is_none")]` was present.
    skip_if_none: bool,
}

#[derive(Debug)]
enum Shape {
    /// `struct S { f1: T1, ... }`
    NamedStruct { name: String, fields: Vec<Field> },
    /// `struct S(T1, ...);` with the given arity.
    TupleStruct { name: String, arity: usize },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the shim's `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_struct_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => panic!("serde shim derive: unit structs are unsupported (deriving `{name}`)"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`], but reports whether one of the skipped
/// attributes is the supported
/// `#[serde(skip_serializing_if = "Option::is_none")]`. Any other
/// `skip_serializing_if` predicate is a compile-time panic: the shim can
/// only test `Option`s.
fn skip_attrs_capturing(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip_if_none = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let text = g.stream().to_string();
                    if text.contains("skip_serializing_if") {
                        assert!(
                            text.contains("Option :: is_none") || text.contains("Option::is_none"),
                            "serde shim derive: only skip_serializing_if = \
                             \"Option::is_none\" is supported, got `{text}`"
                        );
                        skip_if_none = true;
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return skip_if_none,
        }
    }
}

/// Parses `f1: T1, f2: T2, ...` of a named struct, capturing the
/// supported field attributes.
fn parse_struct_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip_if_none = skip_attrs_capturing(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(Field { name, skip_if_none });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Parses `f1: T1, f2: T2, ...` returning the field names (enum variant
/// fields; attributes are skipped, not honored).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(name);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (angle-bracket
/// depth tracked manually; bracketed/parenthesized parts arrive as single
/// groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are unsupported");
        }
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f_name = &f.name;
                    if f.skip_if_none {
                        format!(
                            "if let Some(__x) = &self.{f_name} {{ \
                             __fields.push((\"{f_name}\".to_string(), \
                             ::serde::Serialize::to_value(__x))); }}"
                        )
                    } else {
                        format!(
                            "__fields.push((\"{f_name}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{f_name})));"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Serialize::to_value(&self.{n})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|n| format!("__v{n}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(__v0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), {inner})]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__fields.push((\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                     let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                     {pushes}\n\
                                     ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                                     ::serde::Value::Object(__fields))])\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{0}: ::serde::field(__obj, \"{0}\")?", f.name))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let __obj = ::serde::as_object(__v)?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|n| format!("::serde::Deserialize::from_value(&__arr[{n}])?"))
                    .collect();
                format!(
                    "let __arr = ::serde::as_array(__v)?;\n\
                     if __arr.len() != {arity} {{\n\
                         return Err(::serde::Error::msg(\"wrong tuple arity for {name}\"));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Tuple(arity) if *arity == 1 => format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|n| format!("::serde::Deserialize::from_value(&__arr[{n}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __arr = ::serde::as_array(__inner)?;\n\
                                     if __arr.len() != {arity} {{\n\
                                         return Err(::serde::Error::msg(\
                                         \"wrong arity for {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }}\n",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__obj, \"{f}\")?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __obj = ::serde::as_object(__inner)?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }}\n",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::Error::msg(format!(\
                                     \"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => Err(::serde::Error::msg(format!(\
                                         \"unknown {name} variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::msg(\
                                 \"expected string or single-key object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
