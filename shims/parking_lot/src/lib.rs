//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] with the
//! poison-free `lock()` / `into_inner()` signatures, backed by
//! `std::sync::Mutex` (a poisoned lock is recovered transparently, which
//! matches parking_lot's "no poisoning" contract closely enough for this
//! workspace's uses).

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion primitive (shim over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
