//! Minimal offline stand-in for `rand_distr`: [`Distribution`], [`Normal`]
//! and [`Exp`], which is all this workspace samples.

use rand::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution sampled with the Box–Muller transform.
///
/// Box–Muller draws exactly two uniforms per sample (the spare is
/// discarded), so sampling is deterministic per seed without interior
/// mutability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a Normal with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0) {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so the log is finite; u2 in [0, 1).
        let u1 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with the given rate (inverse scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates an Exponential with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error("Exp requires a positive finite rate"));
        }
        Ok(Exp { rate: lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::from_seed([9; 32])
    }

    #[test]
    fn normal_moments_are_close() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let d = Exp::new(0.5).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }
}
