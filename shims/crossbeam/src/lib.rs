//! Minimal offline stand-in for `crossbeam`: the `thread::scope` /
//! `Scope::spawn` API, delegating to `std::thread::scope` (stable since
//! Rust 1.63, so the historical reason for crossbeam's scoped threads is
//! gone — only the signatures differ).

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    /// Handle for spawning threads inside a [`scope`] invocation.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle
        /// (crossbeam-style) allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || {
                let nested = Scope { inner };
                f(&nested)
            });
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Always `Ok`: panics in scoped threads propagate on
    /// join exactly like upstream's `Err` path would surface them via
    /// `.expect(...)` at every call site in this workspace.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        let result = super::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = &counter;
                scope.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(result, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn borrows_from_environment() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                scope.spawn(move |_| {
                    sums.lock().unwrap().push(chunk.iter().sum::<u64>());
                });
            }
        })
        .unwrap();
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
