//! Minimal offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so this shim provides exactly
//! the API surface the workspace uses: the [`Rng`]/[`RngCore`] traits with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (xoshiro256++), and [`seq::SliceRandom::shuffle`].
//!
//! It is **not** bit-compatible with upstream `rand`: `StdRng` here is
//! xoshiro256++ rather than ChaCha12. Every consumer in this workspace only
//! relies on determinism per seed, which this shim guarantees.

/// Low-level source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's full output domain
/// (the shim's analogue of sampling from `rand`'s `Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Numeric types usable as `gen_range` endpoints.
pub trait UniformSampled: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi - lo) as u64;
                // Widening multiply: bias is span / 2^64, negligible for the
                // span sizes this workspace draws from.
                lo + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // The measure-zero endpoint distinction is irrelevant here.
                Self::sample_below(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_below(self.start, self.end, rng)
    }
}

impl<T: UniformSampled> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing random generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Builds the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// The shim's generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256++).
    ///
    /// Unlike upstream's ChaCha12-based `StdRng` this is not a CSPRNG, but
    /// it passes stringent statistical test batteries, which is all the
    /// reproduction's mechanisms and statistical audits require.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro's all-zero state is a fixed point; remap it.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (shim: `shuffle` and `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    fn rng(seed: u8) -> StdRng {
        StdRng::from_seed([seed; 32])
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = rng(1);
        let mut b = rng(1);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = rng(2);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_range() {
        let mut r = rng(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng(4);
        for _ in 0..10_000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&y));
            let z = r.gen_range(-3i32..4);
            assert!((-3..4).contains(&z));
            let f = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = rng(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = rng(6);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn choose_stays_in_slice() {
        let v = [1, 2, 3];
        let mut r = rng(7);
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
