//! Minimal offline stand-in for `serde`.
//!
//! Real serde is a zero-copy framework generic over data formats; this shim
//! collapses all of that into one self-describing [`Value`] tree (the only
//! format this workspace uses is JSON via the sibling `serde_json` shim).
//! The [`Serialize`]/[`Deserialize`] traits and the derive macros
//! re-exported from `serde_derive` keep call sites source-compatible for
//! the shapes this workspace derives: named-field structs, newtype/tuple
//! structs, and enums with unit, newtype, tuple and struct variants
//! (externally tagged, like real serde's default representation).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// A self-describing tree value; the interchange point between
/// [`Serialize`], [`Deserialize`] and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Negative integer (always `< 0`; non-negative integers use `UInt`).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so serialized field order is stable.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` when `self` is not an object or the key
    /// is absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view, matching `serde_json::Value::as_array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object view as ordered key/value pairs (the shim's object
    /// representation preserves insertion order).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panic-free indexing: missing keys and non-objects yield `Null`,
    /// matching `serde_json::Value` semantics.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::UInt(u) => i128::from(u) == i128::from(*other),
                    Value::Int(i) => i128::from(i) == i128::from(*other),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(i32, i64, u32, u64);

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        *self == (*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(*self, Value::Float(f) if f == *other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs from the interchange tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent; `None` means the
    /// field is required. Overridden by `Option<T>` (absent ⇒ `None`),
    /// mirroring serde's implicit-optional behavior.
    fn missing() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::msg(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => {
                        i64::try_from(u).map_err(|_| Error::msg("integer out of range"))?
                    }
                    _ => return Err(Error::msg(format!("expected integer, got {}", v.kind()))),
                };
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg(format!("expected array, got {}", v.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Duration {
    /// Serde's canonical `Duration` shape: `{ "secs": u64, "nanos": u32 }`.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = as_object(v)?;
        let secs: u64 = field(obj, "secs")?;
        let nanos: u32 = field(obj, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

// lint: allow(DET-HASH) — the pairs are sorted by key below, so the
// serialized object is independent of hash order.
impl<K: Serialize + ToString, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Serialize + ToString + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    /// Ordered maps serialize as objects in key order — already canonical,
    /// which is why deterministic call sites prefer them over `HashMap`.
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut map = BTreeMap::new();
        for (k, v) in as_object(v)? {
            map.insert(
                k.clone(),
                V::from_value(v).map_err(|e| Error::msg(format!("key `{k}`: {e}")))?,
            );
        }
        Ok(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code
// ---------------------------------------------------------------------------

/// Views `v` as an object's field list.
pub fn as_object(v: &Value) -> Result<&[(String, Value)], Error> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        _ => Err(Error::msg(format!("expected object, got {}", v.kind()))),
    }
}

/// Views `v` as an array's item list.
pub fn as_array(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Array(items) => Ok(items),
        _ => Err(Error::msg(format!("expected array, got {}", v.kind()))),
    }
}

/// Extracts and deserializes a struct field, honoring
/// [`Deserialize::missing`] for absent keys.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => T::missing().ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (usize, f64) = Deserialize::from_value(&(3usize, 0.5f64).to_value()).unwrap();
        assert_eq!(t, (3, 0.5));
    }

    #[test]
    fn option_handles_null_and_missing() {
        let none: Option<f64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
        let some: Option<f64> = Deserialize::from_value(&Value::Float(2.0)).unwrap();
        assert_eq!(some, Some(2.0));
        let missing: Result<Option<f64>, _> = field(&[], "radii");
        assert_eq!(missing.unwrap(), None);
        let required: Result<f64, _> = field(&[], "x");
        assert!(required.is_err());
    }

    #[test]
    fn duration_roundtrips() {
        let d = Duration::new(3, 456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("n".into(), Value::UInt(20))]);
        assert_eq!(v["n"], 20);
        assert_eq!(v["absent"], Value::Null);
        assert!(Value::Str("hi".into()) == "hi");
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
