//! Minimal offline stand-in for the `bytes` crate: [`Bytes`], [`BytesMut`]
//! and the [`Buf`]/[`BufMut`] accessor traits, big-endian like upstream.
//!
//! Upstream `Bytes` is a zero-copy refcounted view; this shim owns its
//! storage (wire payloads here are small and test-sized). Semantics of the
//! used methods match upstream: `get_*` consume from the front, `slice`
//! and `truncate` operate on the remaining view, `freeze` converts a
//! mutable buffer into an immutable one.

use std::ops::{Deref, RangeBounds};

/// Read-side accessors over a byte cursor (big-endian).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Returns the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);

    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consumes a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write-side accessors (big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies a sub-range of the remaining bytes into a new `Bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[lo..hi].to_vec(),
            start: 0,
        }
    }

    /// Copies the remaining bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Shortens the remaining view to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.data.truncate(self.start + len);
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            start: 0,
        }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_f64(2.5);
        buf.put_u64(u64::MAX - 1);
        let mut bytes = buf.freeze();
        let mut hdr = [0u8; 3];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_f64(), 2.5);
        assert_eq!(bytes.get_u64(), u64::MAX - 1);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_truncate_follow_the_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[3, 4]);
        b.truncate(3);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn big_endian_layout_matches_from_be_bytes() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_u32(0x0102_0304);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
        assert_eq!(
            u32::from_be_bytes(buf[..4].try_into().unwrap()),
            0x0102_0304
        );
    }
}
