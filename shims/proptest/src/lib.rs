//! Minimal offline stand-in for `proptest`.
//!
//! Provides the [`Strategy`] trait (ranges, tuples, `prop_map`), the
//! `collection`/`array`/`bool` strategy constructors, and the `proptest!`
//! / `prop_assert!` macros this workspace's property tests use. Instead of
//! upstream's shrinking test runner, each property runs a fixed number of
//! deterministic cases seeded from the test name — no shrinking, but
//! failures reproduce exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs.
pub const CASES: u32 = 64;

/// A failed test case (returned through `?` / `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Fixed-size array strategies.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy for `[S::Value; 3]`.
    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// Three independent draws from `strategy`.
    pub fn uniform3<S: Strategy>(strategy: S) -> Uniform3<S> {
        Uniform3(strategy)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `len in size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from a range.
    pub struct HashSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        // lint: allow(DET-HASH) — the set type is the caller's choice;
        // generation draws from the seeded StdRng, not from set order.
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            // lint: allow(DET-HASH) — see the type note above.
            let mut set = std::collections::HashSet::with_capacity(target);
            // Bounded attempts so a too-small value domain degrades to a
            // smaller set instead of hanging.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 50 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `size` distinct elements drawn from `element` (best effort when the
    /// domain is small).
    pub fn hash_set<S: Strategy>(element: S, size: std::ops::Range<usize>) -> HashSetStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        HashSetStrategy { element, size }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform `true` / `false`.
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            rng.gen::<u64>() & 1 == 1
        }
    }
}

/// Builds the deterministic per-test RNG (seeded from the test name).
pub fn runner_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_exact_mut(8) {
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        chunk.copy_from_slice(&h.to_le_bytes());
    }
    StdRng::from_seed(seed)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy, TestCaseError,
    };
}

/// Skips the current case when the assumption does not hold (the shim
/// simply passes the case instead of resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::CASES {
                let mut __rng = $crate::runner_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = __result {
                    panic!("property `{}` failed on case {case}: {e}", stringify!($name));
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn mapped_strategy_applies(x in even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(0u8..5, 1..9)) {
            prop_assert!((1..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn hash_sets_are_distinct(s in crate::collection::hash_set((0i32..50, 0i32..50), 2..10)) {
            prop_assert!(s.len() >= 2);
        }

        #[test]
        fn arrays_and_bools(a in crate::array::uniform3(0u64..7), b in crate::bool::ANY) {
            prop_assert!(a.iter().all(|&x| x < 7));
            let _: bool = b;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::runner_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| Strategy::generate(&(0u64..1000), &mut crate::runner_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
