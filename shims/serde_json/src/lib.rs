//! Minimal offline stand-in for `serde_json`: compact and pretty writers
//! plus a recursive-descent parser over the `serde` shim's [`Value`].

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Converts any serializable value into the shim's self-describing
/// [`Value`] tree, matching `serde_json::to_value` (the `Result` keeps the
/// upstream signature; the shim's serialization itself cannot fail).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::msg("JSON cannot represent non-finite numbers"));
            }
            // Rust's shortest-roundtrip Display; integral floats keep a
            // trailing `.0` so they read back as floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for json in [
            "null",
            "true",
            "false",
            "42",
            "-17",
            "3.25",
            "\"hi\\nthere\"",
        ] {
            let v: Value = from_str(json).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{json}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let json = r#"{"a": [1, 2.5, "x"], "b": {"c": null}, "d": true}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["b"]["c"], Value::Null);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn big_u64_is_exact() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        assert_eq!(to_string(&v).unwrap(), "18446744073709551615");
    }

    #[test]
    fn float_formatting_reads_back_as_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("not a tree").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn non_finite_rejected() {
        assert!(to_string(&f64::NAN).is_err());
    }
}
