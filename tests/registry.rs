//! Registry-level guarantees of the composable pipeline API:
//!
//! 1. a golden test pinning that the seven legacy [`Algorithm`] variants
//!    produce matchings identical to the pre-refactor enum pipeline
//!    (fingerprints recorded from the last enum-dispatch build, same
//!    seeds), through both the enum path and the registry path;
//! 2. a registry-wide property test: every registered spec matches all
//!    tasks whenever `workers >= tasks` (unit capacity);
//! 3. end-to-end coverage of pairings the closed enum could not express.

use pombm::{registry, run, run_spec, Algorithm, PipelineConfig};
use pombm_geom::seeded_rng;
use pombm_matching::HstGreedyEngine;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use proptest::prelude::*;

fn instance(tasks: usize, workers: usize, seed: u64) -> Instance {
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, &mut seeded_rng(seed, 0))
}

fn fnv(pairs: &[(usize, usize)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(t, w) in pairs {
        for v in [t as u64, w as u64] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// Fingerprints recorded from the pre-refactor enum-dispatch pipeline
/// (60 tasks, 100 workers, instance seed 42) for repetitions 0 and 3.
/// Config 0 is `PipelineConfig::default()`; config 1 is
/// `{epsilon: 1.0, grid_side: 16, engine: Indexed, euclid_cells: 8, seed: 7}`.
const GOLDEN: [(Algorithm, [u64; 4]); 7] = [
    (
        Algorithm::LapGr,
        [
            0x7A0B362294B9A1C4,
            0x73850A1C4DFFF23E,
            0xF5644AA25FA3F35E,
            0x9BA31C0112274213,
        ],
    ),
    (
        Algorithm::LapHg,
        [
            0x951AE23BD5DCF805,
            0x7844FCE53234C9C6,
            0x2A85785C96A7AC04,
            0x2B85BEDEEBFFE719,
        ],
    ),
    (
        Algorithm::Tbf,
        [
            0x3B8566C396C7C6A5,
            0xCC781D1E3B004EAC,
            0xB55FA04BBE8F651A,
            0x82802F8CB74AA8DC,
        ],
    ),
    (
        Algorithm::ExpHg,
        [
            0xF7A380A2C85DA188,
            0x1923360CAD0B09DA,
            0x5AA375E6448CFDA5,
            0x4638AD5AAFEE3A42,
        ],
    ),
    (
        Algorithm::TbfRand,
        [
            0xF8BA6DBDDE44253D,
            0x6A6447A7B4574C65,
            0x9035A9BC4CC7B9F2,
            0xD4A590DEA20CB2F9,
        ],
    ),
    (
        Algorithm::TbfChain,
        [
            0x3B8566C396C7C6A5,
            0xCC781D1E3B004EAC,
            0xB55FA04BBE8F651A,
            0x82802F8CB74AA8DC,
        ],
    ),
    (
        Algorithm::RandomFloor,
        [
            0x09C2724C3718E456,
            0xC0E4C14F1DAFD811,
            0x7F563EBB12F3A9DF,
            0xA3714DCC42A9708F,
        ],
    ),
];

fn golden_configs() -> [PipelineConfig; 2] {
    [
        PipelineConfig::default(),
        PipelineConfig {
            epsilon: 1.0,
            grid_side: 16,
            engine: HstGreedyEngine::Indexed,
            euclid_cells: 8,
            seed: 7,
            ..PipelineConfig::default()
        },
    ]
}

#[test]
fn legacy_variants_match_pre_refactor_matchings_exactly() {
    let inst = instance(60, 100, 42);
    let configs = golden_configs();
    for (algo, expected) in GOLDEN {
        for (ci, config) in configs.iter().enumerate() {
            for (ri, rep) in [0u64, 3].into_iter().enumerate() {
                // Enum path (thin alias)...
                let enum_run = run(algo, &inst, config, rep);
                // ...and explicit registry path.
                let spec = registry().spec(algo.spec_name()).expect("registered");
                let spec_run = run_spec(spec, &inst, config, rep).expect("runnable");
                assert_eq!(
                    enum_run.matching.pairs, spec_run.matching.pairs,
                    "{algo}: enum and registry paths diverged"
                );
                assert_eq!(
                    fnv(&enum_run.matching.pairs),
                    expected[ci * 2 + ri],
                    "{algo} config {ci} rep {rep}: drifted from the \
                     pre-refactor enum pipeline"
                );
            }
        }
    }
}

proptest! {
    /// Every registered spec is a total matcher: workers >= tasks implies
    /// every task is assigned (at unit capacity), the assignment is valid,
    /// and reruns reproduce it.
    #[test]
    fn every_spec_matches_all_tasks_when_workers_cover(
        sizes in (5usize..40, 0usize..40),
        seed in 0u64..1000,
        rep in 0u64..3,
    ) {
        let (tasks, extra) = sizes;
        let inst = instance(tasks, tasks + extra, seed);
        let config = PipelineConfig {
            grid_side: 16,
            ..PipelineConfig::default()
        };
        for spec in registry().specs() {
            let r = run_spec(spec, &inst, &config, rep)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(r.matching.size(), tasks, "{} left tasks unmatched", spec.name());
            prop_assert!(r.matching.is_valid(), "{} produced an invalid matching", spec.name());
            let again = run_spec(spec, &inst, &config, rep)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&r.matching.pairs, &again.matching.pairs,
                "{} is not reproducible", spec.name());
        }
    }
}

#[test]
fn novel_pairings_run_end_to_end() {
    let inst = instance(50, 90, 5);
    let config = PipelineConfig {
        grid_side: 16,
        ..PipelineConfig::default()
    };
    // Registered novel pairings...
    for name in ["exp-chain", "tbf-cap", "lap-kd"] {
        let spec = registry().spec(name).unwrap();
        let r = run_spec(spec, &inst, &config, 0).expect(name);
        assert_eq!(r.matching.size(), 50, "{name}");
        assert!(r.metrics.total_distance > 0.0, "{name}");
    }
    // ...and every free mechanism x matcher product that carries location
    // information (blind mechanisms only pair with the blind matcher).
    for mech in ["laplace", "hst", "exp", "identity"] {
        for matcher in [
            "greedy",
            "kd-greedy",
            "hst-greedy",
            "hst-rand",
            "chain",
            "capacity",
            "random",
        ] {
            let spec = registry().compose(mech, matcher).unwrap();
            let r = run_spec(&spec, &inst, &config, 1)
                .unwrap_or_else(|e| panic!("{mech}+{matcher}: {e}"));
            assert_eq!(r.matching.size(), 50, "{mech}+{matcher}");
        }
    }
    // The blind mechanism works with the location-blind matcher and is
    // rejected (not mis-assigned) by location-aware ones.
    let blind_ok = registry().compose("blind", "random").unwrap();
    assert_eq!(
        run_spec(&blind_ok, &inst, &config, 0)
            .unwrap()
            .matching
            .size(),
        50
    );
    let blind_bad = registry().compose("blind", "greedy").unwrap();
    assert!(run_spec(&blind_bad, &inst, &config, 0).is_err());
}

#[test]
fn empty_instances_produce_empty_matchings() {
    // Zero tasks or zero workers must yield an empty matching through
    // every spec — the pre-refactor enum arms did, and an empty side
    // carries no location information for a matcher to reject.
    let config = PipelineConfig {
        grid_side: 8,
        ..PipelineConfig::default()
    };
    for (tasks, workers) in [(0usize, 12usize), (12, 0), (0, 0)] {
        let inst = instance(tasks, workers, 3);
        for spec in registry().specs() {
            let r = run_spec(spec, &inst, &config, 0)
                .unwrap_or_else(|e| panic!("{} on {tasks}x{workers}: {e}", spec.name()));
            assert_eq!(r.matching.size(), 0, "{} on {tasks}x{workers}", spec.name());
        }
    }
}

#[test]
fn zero_capacity_is_rejected_not_clamped() {
    let inst = instance(10, 10, 4);
    let config = PipelineConfig {
        grid_side: 8,
        capacity: 0,
        ..PipelineConfig::default()
    };
    let err = run_spec(registry().spec("tbf-cap").unwrap(), &inst, &config, 0).unwrap_err();
    assert!(err.to_string().contains("capacity"), "{err}");
}

#[test]
fn identity_mechanism_is_the_utility_ceiling() {
    // No obfuscation must beat every private mechanism on average distance
    // under the same matcher.
    let inst = instance(40, 80, 11);
    let config = PipelineConfig {
        grid_side: 16,
        ..PipelineConfig::default()
    };
    let avg = |mech: &str| -> f64 {
        let spec = registry().compose(mech, "greedy").unwrap();
        (0..4)
            .map(|rep| {
                run_spec(&spec, &inst, &config, rep)
                    .unwrap()
                    .metrics
                    .total_distance
            })
            .sum::<f64>()
            / 4.0
    };
    let clear = avg("identity");
    let laplace = avg("laplace");
    assert!(
        clear < laplace,
        "identity ({clear}) should beat laplace ({laplace})"
    );
}
