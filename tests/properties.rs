//! Property-based tests (proptest) on the core data structures and
//! invariants: leaf-code arithmetic, HST metric properties, subtree-counter
//! consistency, weight-table normalization and mechanism support.

use pombm_geom::{seeded_rng, Point, PointSet};
use pombm_hst::{CodeContext, Hst, LeafCode, SubtreeCounter};
use pombm_privacy::{Epsilon, WeightTable};
use proptest::prelude::*;

fn arb_ctx() -> impl Strategy<Value = CodeContext> {
    (2u32..=4, 1u32..=8).prop_map(|(c, d)| CodeContext::new(c, d))
}

proptest! {
    /// LCA level is a symmetric ultrametric valuation: lvl(a,b) = lvl(b,a),
    /// zero iff equal, and lvl(a,c) <= max(lvl(a,b), lvl(b,c)).
    #[test]
    fn lca_level_is_an_ultrametric(ctx in arb_ctx(), seeds in proptest::array::uniform3(0u64..1_000_000)) {
        let n = ctx.num_leaves();
        let a = LeafCode(seeds[0] % n);
        let b = LeafCode(seeds[1] % n);
        let c = LeafCode(seeds[2] % n);
        prop_assert_eq!(ctx.lca_level(a, b), ctx.lca_level(b, a));
        prop_assert_eq!(ctx.lca_level(a, a), 0);
        prop_assert!((ctx.lca_level(a, b) == 0) == (a == b));
        let ab = ctx.lca_level(a, b);
        let bc = ctx.lca_level(b, c);
        let ac = ctx.lca_level(a, c);
        prop_assert!(ac <= ab.max(bc), "ultrametric violated: {} > max({}, {})", ac, ab, bc);
    }

    /// Digit decomposition round-trips through from_digits.
    #[test]
    fn digits_roundtrip(ctx in arb_ctx(), seed in 0u64..1_000_000) {
        let code = LeafCode(seed % ctx.num_leaves());
        let digits = ctx.to_digits(code);
        prop_assert_eq!(digits.len() as u32, ctx.depth);
        prop_assert!(digits.iter().all(|&d| d < ctx.branching));
        prop_assert_eq!(ctx.from_digits(&digits), code);
    }

    /// Ancestor prefixes are monotone contractions: ancestor at level D is
    /// the root (0), level 0 is the identity, and each level divides by c.
    #[test]
    fn ancestors_contract(ctx in arb_ctx(), seed in 0u64..1_000_000) {
        let code = LeafCode(seed % ctx.num_leaves());
        prop_assert_eq!(ctx.ancestor(code, 0), code.value());
        prop_assert_eq!(ctx.ancestor(code, ctx.depth), 0);
        for lvl in 0..ctx.depth {
            prop_assert_eq!(
                ctx.ancestor(code, lvl) / ctx.branching as u64,
                ctx.ancestor(code, lvl + 1)
            );
        }
    }

    /// SubtreeCounter::nearest returns a stored leaf at the true minimum
    /// tree distance for arbitrary contents and queries.
    #[test]
    fn counter_nearest_is_minimal(
        ctx in arb_ctx(),
        stored in proptest::collection::vec(0u64..1_000_000, 1..20),
        query in 0u64..1_000_000,
    ) {
        let n = ctx.num_leaves();
        let stored: Vec<LeafCode> = stored.into_iter().map(|v| LeafCode(v % n)).collect();
        let query = LeafCode(query % n);
        let mut counter = SubtreeCounter::new(ctx);
        for &s in &stored {
            counter.insert(s);
        }
        let got = counter.nearest(query).expect("non-empty");
        let got_d = ctx.tree_dist_units(got, query);
        let best = stored.iter().map(|&s| ctx.tree_dist_units(s, query)).min().unwrap();
        prop_assert_eq!(got_d, best);
        prop_assert!(stored.contains(&got));
    }

    /// Insert/remove sequences keep the counter consistent with a reference
    /// multiset.
    #[test]
    fn counter_tracks_reference_multiset(
        ops in proptest::collection::vec((proptest::bool::ANY, 0u64..81), 1..60)
    ) {
        let ctx = CodeContext::new(3, 4); // 81 leaves
        let mut counter = SubtreeCounter::new(ctx);
        let mut reference: std::collections::HashMap<u64, u32> = Default::default();
        for (insert, v) in ops {
            let code = LeafCode(v);
            if insert {
                counter.insert(code);
                *reference.entry(v).or_insert(0) += 1;
            } else {
                let expect = reference.get(&v).copied().unwrap_or(0) > 0;
                prop_assert_eq!(counter.remove(code), expect);
                if expect {
                    *reference.get_mut(&v).unwrap() -= 1;
                }
            }
            let total: u32 = reference.values().sum();
            prop_assert_eq!(counter.len(), total as usize);
            for (&v, &cnt) in &reference {
                prop_assert_eq!(counter.count(LeafCode(v)), cnt);
            }
        }
    }

    /// Weight tables normalize: level probabilities sum to 1 for arbitrary
    /// shapes and budgets.
    #[test]
    fn weight_table_normalizes(
        c in 2u32..=5,
        d in 1u32..=14,
        eps in 1e-6f64..10.0,
    ) {
        let t = WeightTable::new(Epsilon::new(eps), c, d);
        let sum: f64 = (0..=d).map(|l| t.level_probability(l)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        // pu telescopes to the same distribution.
        let mut ascend = 1.0;
        for i in 0..=d {
            let stop = ascend * (1.0 - t.pu(i));
            prop_assert!((stop - t.level_probability(i)).abs() < 1e-9);
            ascend *= t.pu(i);
        }
    }

    /// HST construction over random distinct points: every point gets a
    /// distinct leaf and tree distances dominate the Euclidean metric.
    #[test]
    fn hst_over_random_points_is_valid(
        raw in proptest::collection::hash_set((0i32..40, 0i32..40), 2..25),
        seed in 0u64..1000,
    ) {
        let points: Vec<Point> = raw
            .into_iter()
            .map(|(x, y)| Point::new(x as f64 * 2.0, y as f64 * 2.0))
            .collect();
        let ps = PointSet::new(points);
        let mut rng = seeded_rng(seed, 77);
        let hst = Hst::build(&ps, &mut rng);
        // Distinct leaves per point.
        let mut seen = std::collections::HashSet::new();
        for p in 0..ps.len() {
            prop_assert!(seen.insert(hst.leaf_of(p)));
            prop_assert_eq!(hst.point_of(hst.leaf_of(p)), Some(p));
        }
        hst.validate_domination().map_err(TestCaseError::fail)?;
    }

    /// Wire-format roundtrip: encode → decode preserves every queryable
    /// fact for arbitrary distinct point sets and seeds.
    #[test]
    fn wire_roundtrip_is_lossless(
        raw in proptest::collection::hash_set((0i32..30, 0i32..30), 2..20),
        seed in 0u64..500,
    ) {
        let points: Vec<Point> = raw
            .into_iter()
            .map(|(x, y)| Point::new(x as f64 * 3.0, y as f64 * 3.0))
            .collect();
        let ps = PointSet::new(points);
        let mut rng = seeded_rng(seed, 99);
        let hst = Hst::build(&ps, &mut rng);
        let published = pombm_hst::wire::decode(pombm_hst::wire::encode(&hst))
            .expect("roundtrip decodes");
        prop_assert_eq!(published.ctx, hst.ctx());
        for p in 0..ps.len() {
            prop_assert_eq!(published.leaf_codes[p], hst.leaf_of(p));
        }
        // A corrupted byte anywhere must be rejected.
        let bytes = pombm_hst::wire::encode(&hst);
        let pos = (seed as usize * 31) % bytes.len();
        let mut corrupted = bytes.to_vec();
        corrupted[pos] ^= 0x01;
        prop_assert!(pombm_hst::wire::decode(corrupted.into()).is_err());
    }

    /// K-d tree greedy equals linear-scan greedy on arbitrary inputs.
    #[test]
    fn kdtree_greedy_equals_scan(
        worker_raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..40),
        task_raw in proptest::collection::vec((0u32..1000, 0u32..1000), 1..40),
    ) {
        let workers: Vec<Point> = worker_raw
            .iter()
            .map(|&(x, y)| Point::new(x as f64 / 10.0, y as f64 / 10.0))
            .collect();
        let tasks: Vec<Point> = task_raw
            .iter()
            .map(|&(x, y)| Point::new(x as f64 / 10.0, y as f64 / 10.0))
            .collect();
        let mut tree = pombm_matching::kdtree::KdTree::build(workers.clone());
        let mut scan = pombm_matching::EuclideanGreedy::new(workers);
        for t in &tasks {
            prop_assert_eq!(tree.take_nearest(t), scan.assign(t));
        }
    }

    /// The budget ledger never grants more than the lifetime budget, for
    /// arbitrary charge sequences.
    #[test]
    fn budget_ledger_never_overspends(
        charges in proptest::collection::vec(1u32..100, 1..50),
        lifetime_tenths in 1u32..30,
    ) {
        let lifetime = lifetime_tenths as f64 / 10.0;
        let ledger = pombm_privacy::budget::BudgetLedger::new(lifetime);
        let mut granted = 0.0;
        for c in charges {
            let eps = c as f64 / 100.0;
            if ledger.charge(1, eps).is_ok() {
                granted += eps;
            }
        }
        prop_assert!(granted <= lifetime * (1.0 + 1e-9), "granted {} > {}", granted, lifetime);
        prop_assert!((ledger.remaining(1) - (lifetime - granted)).abs() < 1e-9);
    }

    /// The random-walk mechanism always outputs a leaf of the tree, for
    /// arbitrary budgets.
    #[test]
    fn mechanism_output_stays_in_tree(
        eps in 1e-4f64..5.0,
        seed in 0u64..1000,
    ) {
        let ps = PointSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(6.0, 6.0),
        ]);
        let mut rng = seeded_rng(seed, 88);
        let hst = Hst::build(&ps, &mut rng);
        let mech = pombm_privacy::HstMechanism::new(&hst, Epsilon::new(eps));
        for p in 0..ps.len() {
            let z = mech.obfuscate(&hst, hst.leaf_of(p), &mut rng);
            prop_assert!(hst.ctx().contains(z));
        }
    }
}
