//! Correctness harness for partitioned sweep execution and the byte-exact
//! merge:
//!
//! 1. proptest invariants — for arbitrary partition counts and arbitrary
//!    (including ragged/singleton) valid partitions, merging the partials
//!    reproduces the single-process sweep byte-for-byte on both flavours,
//!    while overlapping or gappy partition sets produce typed
//!    [`MergeError`]s, never silent cell loss;
//! 2. checkpoint/resume — a capped run stops with a typed error, the
//!    re-run resumes the surviving cells (stats prove it) and finishes
//!    byte-identical to a fresh run, even under a different partition
//!    spec;
//! 3. golden pins — the partial-report JSON field names, the `i/N` slice
//!    arithmetic, and the fingerprint's sensitivity/stability.

use pombm::merge::{merge_dynamic, merge_static, MergeError};
use pombm::sweep::{
    dynamic_sweep_fingerprint, dynamic_sweep_job_count, run_dynamic_sweep,
    run_dynamic_sweep_partition, run_dynamic_sweep_range, run_sweep, run_sweep_partition,
    run_sweep_range, sweep_fingerprint, sweep_job_count, DynamicSweepConfig, PartitionPlan,
    PartitionRun, SweepConfig,
};
use pombm::{PipelineConfig, PipelineError};
use pombm_geom::seeded_rng;
use proptest::prelude::*;
use rand::Rng;

fn static_config(seed: u64) -> SweepConfig {
    SweepConfig {
        mechanisms: vec!["identity".into(), "laplace".into()],
        matchers: vec!["greedy".into(), "offline-opt".into()],
        scenarios: Vec::new(),
        sizes: vec![6, 8],
        epsilons: vec![0.5],
        repetitions: 1,
        shards: 2,
        timings: false,
        base: PipelineConfig {
            grid_side: 16,
            seed,
            ..PipelineConfig::default()
        },
    }
}

fn dynamic_config(seed: u64) -> DynamicSweepConfig {
    DynamicSweepConfig {
        mechanisms: vec!["identity".into(), "hst".into()],
        matchers: vec!["hst-greedy".into(), "random".into()],
        scenarios: Vec::new(),
        shift_plans: vec!["always-on".into(), "short".into()],
        sizes: vec![8],
        epsilons: vec![0.6],
        shards: 2,
        timings: false,
        ratio: false,
        grid_side: 16,
        seed,
    }
}

/// Deterministic ragged cut points for `total` jobs: always includes 0 and
/// `total`, with interior cuts drawn from `cut_seed` (singleton and
/// full-width slices both occur).
fn ragged_cuts(total: usize, cut_seed: u64) -> Vec<usize> {
    let mut rng = seeded_rng(cut_seed, 0xCA7);
    let mut cuts = vec![0, total];
    for i in 1..total {
        if rng.gen::<f64>() < 0.35 {
            cuts.push(i);
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

proptest! {
    /// Balanced `i/N` partitions merge back to the single-process report
    /// byte-for-byte, for every partition count, on both flavours.
    #[test]
    fn balanced_partitions_merge_byte_exactly(seed in 0u64..10_000, n in 1usize..8) {
        let config = static_config(seed);
        let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
        let partials: Vec<_> = (1..=n)
            .map(|i| {
                let run = PartitionRun {
                    plan: PartitionPlan::new(i, n).unwrap(),
                    ..PartitionRun::default()
                };
                run_sweep_partition(&config, &run).unwrap().0
            })
            .collect();
        let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
        prop_assert_eq!(&full, &merged, "static: n = {}", n);

        let config = dynamic_config(seed);
        let full = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
        let partials: Vec<_> = (1..=n)
            .map(|i| {
                let run = PartitionRun {
                    plan: PartitionPlan::new(i, n).unwrap(),
                    ..PartitionRun::default()
                };
                run_dynamic_sweep_partition(&config, &run).unwrap().0
            })
            .collect();
        let merged = serde_json::to_string(&merge_dynamic(&partials).unwrap()).unwrap();
        prop_assert_eq!(&full, &merged, "dynamic: n = {}", n);
    }

    /// Arbitrary ragged (uneven, singleton, even whole-space) disjoint
    /// covering slices merge byte-exactly regardless of input order.
    #[test]
    fn ragged_partitions_merge_byte_exactly(seed in 0u64..10_000, cut_seed in 0u64..10_000) {
        let config = static_config(seed);
        let total = sweep_job_count(&config).unwrap();
        let cuts = ragged_cuts(total, cut_seed);
        let mut partials: Vec<_> = cuts
            .windows(2)
            .map(|w| run_sweep_range(&config, w[0]..w[1]).unwrap())
            .collect();
        partials.reverse(); // merge accepts partials in any order
        let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
        let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
        prop_assert_eq!(&full, &merged, "cuts = {:?}", cuts);

        let config = dynamic_config(seed);
        let total = dynamic_sweep_job_count(&config).unwrap();
        let cuts = ragged_cuts(total, cut_seed);
        let mut partials: Vec<_> = cuts
            .windows(2)
            .map(|w| run_dynamic_sweep_range(&config, w[0]..w[1]).unwrap())
            .collect();
        partials.reverse();
        let merged = serde_json::to_string(&merge_dynamic(&partials).unwrap()).unwrap();
        let full = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
        prop_assert_eq!(&full, &merged, "cuts = {:?}", cuts);
    }

    /// Dropping any one slice from a covering set is a typed `Gap`, and
    /// duplicating any one is a typed `Overlap` — never silent cell loss.
    #[test]
    fn gappy_and_overlapping_sets_are_typed_errors(
        seed in 0u64..10_000,
        cut_seed in 0u64..10_000,
        victim in 0usize..64,
    ) {
        let config = static_config(seed);
        let total = sweep_job_count(&config).unwrap();
        let cuts = ragged_cuts(total, cut_seed);
        let partials: Vec<_> = cuts
            .windows(2)
            .map(|w| run_sweep_range(&config, w[0]..w[1]).unwrap())
            .collect();
        let victim = victim % partials.len();

        let mut gappy = partials.clone();
        let removed = gappy.remove(victim);
        match merge_static(&gappy) {
            Err(MergeError::Gap { job }) => {
                prop_assert!(removed.covers().contains(&job), "gap {} outside victim", job);
            }
            // Removing the only slice leaves nothing at all.
            Err(MergeError::NoPartials) => prop_assert!(gappy.is_empty()),
            other => prop_assert!(false, "expected Gap, got {:?}", other.map(|_| ())),
        }

        let mut overlapping = partials.clone();
        overlapping.push(partials[victim].clone());
        match merge_static(&overlapping) {
            Err(MergeError::Overlap { job }) => {
                prop_assert!(
                    partials[victim].covers().contains(&job),
                    "overlap {} outside victim", job
                );
            }
            other => prop_assert!(false, "expected Overlap, got {:?}", other.map(|_| ())),
        }
    }

    /// `PartitionPlan::slice` is a partition in the mathematical sense:
    /// disjoint, covering, contiguous, balanced to within one job.
    #[test]
    fn partition_plan_slices_tile_the_job_space(total in 0usize..200, n in 1usize..12) {
        let mut next = 0;
        for i in 1..=n {
            let slice = PartitionPlan::new(i, n).unwrap().slice(total);
            prop_assert_eq!(slice.start, next, "i = {}", i);
            prop_assert!(slice.len() <= total.div_ceil(n), "i = {} oversized", i);
            prop_assert!(slice.len() + 1 >= total / n, "i = {} undersized", i);
            next = slice.end;
        }
        prop_assert_eq!(next, total, "slices must cover exactly");
    }
}

#[test]
fn partition_plan_parses_and_validates() {
    let plan = PartitionPlan::parse("2/3").unwrap();
    assert_eq!((plan.index(), plan.count()), (2, 3));
    assert_eq!(plan.to_string(), "2/3");
    assert_eq!(
        PartitionPlan::parse(" 1 / 1 ").unwrap(),
        PartitionPlan::full()
    );
    for bad in ["0/3", "4/3", "3", "a/b", "1/0", "/", "1/2/3", ""] {
        assert!(
            matches!(
                PartitionPlan::parse(bad),
                Err(PipelineError::InvalidConfig {
                    field: "partition",
                    ..
                })
            ),
            "`{bad}` should be rejected"
        );
    }
}

/// A ratio-enabled dynamic sweep — the full matcher catalog including
/// the `dynamic-opt` oracle — partitions and merges byte-exactly: the
/// `competitive_ratio` and drop-latency columns are part of the
/// fingerprinted deterministic contract, for balanced and ragged cuts
/// alike.
#[test]
fn ratio_partitions_merge_byte_exactly() {
    let mut config = dynamic_config(7);
    config.ratio = true;
    config.matchers = Vec::new(); // full catalog: the oracle joins the axis
    let report = run_dynamic_sweep(&config).unwrap();
    assert!(
        report
            .cells
            .iter()
            .any(|c| c.matcher == pombm::DEFAULT_DYNAMIC_ORACLE),
        "a ratio sweep with no matcher filter must include the oracle row"
    );
    assert!(
        report
            .cells
            .iter()
            .all(|c| c.measurement.is_none() || c.competitive_ratio.is_some()),
        "every measured ratio cell carries a ratio"
    );
    let full = serde_json::to_string(&report).unwrap();
    for n in [2usize, 3, 5] {
        let partials: Vec<_> = (1..=n)
            .map(|i| {
                let run = PartitionRun {
                    plan: PartitionPlan::new(i, n).unwrap(),
                    ..PartitionRun::default()
                };
                run_dynamic_sweep_partition(&config, &run).unwrap().0
            })
            .collect();
        let merged = serde_json::to_string(&merge_dynamic(&partials).unwrap()).unwrap();
        assert_eq!(full, merged, "n = {n}");
    }
    let total = dynamic_sweep_job_count(&config).unwrap();
    let cuts = ragged_cuts(total, 99);
    let mut partials: Vec<_> = cuts
        .windows(2)
        .map(|w| run_dynamic_sweep_range(&config, w[0]..w[1]).unwrap())
        .collect();
    partials.reverse();
    let merged = serde_json::to_string(&merge_dynamic(&partials).unwrap()).unwrap();
    assert_eq!(full, merged, "cuts = {cuts:?}");

    // Ratio on/off changes the fingerprint (the oracle name enters it),
    // so mixed ratio/plain partials can never silently merge.
    let mut plain = config.clone();
    plain.ratio = false;
    assert_ne!(
        dynamic_sweep_fingerprint(&config).unwrap(),
        dynamic_sweep_fingerprint(&plain).unwrap()
    );
}

/// The partial-report JSON field names are a public contract (CI
/// artifacts, `pombm merge` inputs): pin them exactly, in declaration
/// order, for both flavours.
#[test]
fn partial_report_json_fields_are_pinned() {
    let config = static_config(1);
    let partial = run_sweep_range(&config, 0..2).unwrap();
    let value = serde_json::to_value(&partial).unwrap();
    let keys: Vec<&str> = value
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        [
            "flavor",
            "fingerprint",
            "partition_index",
            "partition_count",
            "total_jobs",
            "start",
            "seed",
            "repetitions",
            "cells",
        ],
        "PartialSweepReport JSON contract drifted"
    );
    assert_eq!(value["flavor"], "static");

    let config = dynamic_config(1);
    let partial = run_dynamic_sweep_range(&config, 0..2).unwrap();
    let value = serde_json::to_value(&partial).unwrap();
    let keys: Vec<&str> = value
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        [
            "flavor",
            "fingerprint",
            "partition_index",
            "partition_count",
            "total_jobs",
            "start",
            "seed",
            "horizon",
            "cells",
        ],
        "DynamicPartialSweepReport JSON contract drifted"
    );
    assert_eq!(value["flavor"], "dynamic");
}

/// A partial survives a JSON round-trip bit-exactly — the property that
/// lets checkpoints and cross-machine transport preserve the byte-exact
/// merge contract.
#[test]
fn partial_report_json_roundtrip_is_exact() {
    let config = static_config(5);
    let total = sweep_job_count(&config).unwrap();
    let partial = run_sweep_range(&config, 0..total).unwrap();
    let json = serde_json::to_string(&partial).unwrap();
    let back: pombm::PartialSweepReport = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    let merged = serde_json::to_string(&merge_static(&[back]).unwrap()).unwrap();
    let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    assert_eq!(merged, full);
}

/// The fingerprint distinguishes configurations that produce different
/// cells, and nothing else: parallelism/timings knobs and an explicit
/// full-registry filter leave it unchanged.
#[test]
fn fingerprint_tracks_job_semantics_only() {
    let base = static_config(3);
    let fp = sweep_fingerprint(&base).unwrap();

    let mut parallel = base.clone();
    parallel.shards = 7;
    parallel.timings = true;
    parallel.base.threads = 4;
    assert_eq!(fp, sweep_fingerprint(&parallel).unwrap());

    for (label, changed) in [
        ("seed", {
            let mut c = base.clone();
            c.base.seed = 4;
            c
        }),
        ("epsilons", {
            let mut c = base.clone();
            c.epsilons = vec![0.6];
            c
        }),
        ("sizes", {
            let mut c = base.clone();
            c.sizes = vec![6];
            c
        }),
        ("matchers", {
            let mut c = base.clone();
            c.matchers = vec!["greedy".into()];
            c
        }),
        ("repetitions", {
            let mut c = base.clone();
            c.repetitions = 2;
            c
        }),
        ("grid", {
            let mut c = base.clone();
            c.base.grid_side = 32;
            c
        }),
    ] {
        assert_ne!(fp, sweep_fingerprint(&changed).unwrap(), "{label}");
    }

    // Dynamic fingerprints live in a different namespace entirely.
    let dynamic = dynamic_config(3);
    assert_ne!(fp, dynamic_sweep_fingerprint(&dynamic).unwrap());
}

fn checkpoint_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("pombm-partition-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A capped checkpointed run stops with the typed `CellCap` error; the
/// re-run resumes exactly the persisted cells (stats prove it) and its
/// output is byte-identical to a fresh uncheckpointed run — even when the
/// resume happens under a different partition spec, because checkpoint
/// entries are keyed by global job index.
#[test]
fn checkpointed_runs_resume_byte_identically() {
    let config = static_config(11);
    let total = sweep_job_count(&config).unwrap();
    let dir = checkpoint_dir("static-resume");
    let capped = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: Some(dir.clone()),
        max_cells: Some(2),
    };
    match run_sweep_partition(&config, &capped) {
        Err(PipelineError::CellCap { computed }) => assert_eq!(computed, 2),
        other => panic!("expected CellCap, got {other:?}"),
    }

    // Resume under a 2-way partition spec: together the two partials see
    // both persisted cells.
    let mut resumed_total = 0;
    let mut partials = Vec::new();
    for i in 1..=2 {
        let run = PartitionRun {
            plan: PartitionPlan::new(i, 2).unwrap(),
            checkpoint: Some(dir.clone()),
            max_cells: None,
        };
        let (partial, stats) = run_sweep_partition(&config, &run).unwrap();
        resumed_total += stats.resumed;
        partials.push(partial);
    }
    assert_eq!(resumed_total, 2, "both capped cells must be resumed");
    let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
    let fresh = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    assert_eq!(merged, fresh);

    // A final full resume recomputes nothing.
    let run = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: Some(dir.clone()),
        max_cells: None,
    };
    let (partial, stats) = run_sweep_partition(&config, &run).unwrap();
    assert_eq!(stats.resumed, total);
    assert_eq!(stats.computed, 0);
    let report = pombm::SweepReport {
        seed: partial.seed,
        repetitions: partial.repetitions,
        cells: partial.cells,
    };
    assert_eq!(serde_json::to_string(&report).unwrap(), fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--timings` is excluded from the fingerprint (timed and untimed runs
/// of the same grid share a checkpoint), so resumed cells may carry
/// `wall_ms` from a timed producer; a timings-off resume must strip them
/// to keep its output byte-identical to a fresh timings-off run.
#[test]
fn cross_timings_resume_stays_byte_identical() {
    let dir = checkpoint_dir("cross-timings");
    let mut timed = static_config(31);
    timed.timings = true;
    let full = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: Some(dir.clone()),
        max_cells: None,
    };
    run_sweep_partition(&timed, &full).unwrap();

    let untimed = static_config(31);
    let (partial, stats) = run_sweep_partition(&untimed, &full).unwrap();
    assert!(stats.resumed > 0, "the timed run must seed the resume");
    assert!(partial.cells.iter().all(|c| c.wall_ms.is_none()));
    let report = pombm::SweepReport {
        seed: partial.seed,
        repetitions: partial.repetitions,
        cells: partial.cells,
    };
    let fresh = serde_json::to_string(&run_sweep(&untimed).unwrap()).unwrap();
    assert_eq!(serde_json::to_string(&report).unwrap(), fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-cell cap could never make progress across re-runs; it is
/// rejected up front, as is a cap without a checkpoint.
#[test]
fn degenerate_caps_are_rejected() {
    let config = static_config(0);
    let dir = checkpoint_dir("zero-cap");
    for (checkpoint, max_cells) in [(Some(dir.clone()), Some(0)), (None, Some(1))] {
        let run = PartitionRun {
            plan: PartitionPlan::full(),
            checkpoint,
            max_cells,
        };
        assert!(matches!(
            run_sweep_partition(&config, &run),
            Err(PipelineError::InvalidConfig {
                field: "max-cells",
                ..
            })
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint is keyed by flavour + fingerprint: runs of a different
/// configuration sharing the directory never resume each other's cells,
/// and a truncated trailing line (a killed run) is recomputed, not fatal.
#[test]
fn checkpoint_isolation_and_truncation_tolerance() {
    let dir = checkpoint_dir("isolation");
    let config = static_config(21);
    let total = sweep_job_count(&config).unwrap();
    let full = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: Some(dir.clone()),
        max_cells: None,
    };
    let (first, stats) = run_sweep_partition(&config, &full).unwrap();
    assert_eq!(stats.computed, total);

    // A reseeded config shares the directory but resumes nothing.
    let mut reseeded = config.clone();
    reseeded.base.seed = 22;
    let (_, stats) = run_sweep_partition(&reseeded, &full).unwrap();
    assert_eq!(stats.resumed, 0, "different fingerprint must not resume");

    // The dynamic flavour is isolated too.
    let dyn_config = dynamic_config(21);
    let (_, stats) = run_dynamic_sweep_partition(&dyn_config, &full).unwrap();
    assert_eq!(stats.resumed, 0);

    // Truncate the static log mid-line (as a kill would): the damaged
    // entry is recomputed and the output is still byte-identical.
    let log = dir.join(format!(
        "static-{}.jsonl",
        sweep_fingerprint(&config).unwrap()
    ));
    let text = std::fs::read_to_string(&log).unwrap();
    assert_eq!(text.lines().count(), total);
    std::fs::write(&log, &text[..text.len() - 9]).unwrap();
    let (resumed, stats) = run_sweep_partition(&config, &full).unwrap();
    assert_eq!(stats.resumed, total - 1);
    assert_eq!(stats.computed, 1);
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&first).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serializes a full-plan partial as the equivalent single-process
/// [`pombm::SweepReport`] for byte comparison against `run_sweep`.
fn as_full_report(partial: pombm::sweep::PartialSweepReport) -> String {
    serde_json::to_string(&pombm::SweepReport {
        seed: partial.seed,
        repetitions: partial.repetitions,
        cells: partial.cells,
    })
    .unwrap()
}

/// The crash-consistency contract of the append-only log: each line is a
/// single whole-line `write_all`, so a torn tail is only ever *one*
/// damaged line. Both damage shapes a shared checkpoint dir can exhibit —
/// a byte-truncated final line (a kill mid-write) and an
/// interleaved-garbage tail (two writers' fragments mashed into one
/// line) — must be skipped and recomputed, never a parse failure or a
/// wrong cell.
#[test]
fn checkpoint_tail_corruption_recomputes() {
    let config = static_config(23);
    let total = sweep_job_count(&config).unwrap();
    let fresh = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    let log_name = format!("static-{}.jsonl", sweep_fingerprint(&config).unwrap());
    let full = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: None, // filled per case
        max_cells: None,
    };

    // Case 1: byte-truncated tail — the final line loses its last bytes.
    let dir = checkpoint_dir("tail-truncated");
    let run = PartitionRun {
        checkpoint: Some(dir.clone()),
        ..full.clone()
    };
    run_sweep_partition(&config, &run).unwrap();
    let log = dir.join(&log_name);
    let text = std::fs::read_to_string(&log).unwrap();
    std::fs::write(&log, &text[..text.len() - 7]).unwrap();
    let (report, stats) = run_sweep_partition(&config, &run).unwrap();
    assert_eq!((stats.resumed, stats.computed), (total - 1, 1));
    assert_eq!(as_full_report(report), fresh);
    let _ = std::fs::remove_dir_all(&dir);

    // Case 2: interleaved-garbage tail — the final line is replaced by a
    // mash of two line fragments, as torn concurrent appends would leave.
    let dir = checkpoint_dir("tail-interleaved");
    let run = PartitionRun {
        checkpoint: Some(dir.clone()),
        ..full.clone()
    };
    run_sweep_partition(&config, &run).unwrap();
    let log = dir.join(&log_name);
    let text = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2);
    let last = lines[lines.len() - 1];
    let mangled = format!(
        "{}{}\n",
        &last[..last.len() / 2],
        &lines[0][lines[0].len() / 3..]
    );
    let intact = lines[..lines.len() - 1].join("\n");
    std::fs::write(&log, format!("{intact}\n{mangled}")).unwrap();
    let (report, stats) = run_sweep_partition(&config, &run).unwrap();
    assert_eq!((stats.resumed, stats.computed), (total - 1, 1));
    assert_eq!(as_full_report(report), fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A persisted index outside the job-count bound (a corrupt or foreign
/// line — e.g. a log produced by a larger grid sharing the fingerprint
/// through a format change) is skipped as recompute, not a panic or a
/// silently misplaced cell.
#[test]
fn checkpoint_out_of_bounds_index_recomputes() {
    let config = static_config(29);
    let total = sweep_job_count(&config).unwrap();
    let fresh = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    let dir = checkpoint_dir("foreign-index");
    let run = PartitionRun {
        plan: PartitionPlan::full(),
        checkpoint: Some(dir.clone()),
        max_cells: None,
    };
    run_sweep_partition(&config, &run).unwrap();
    let log = dir.join(format!(
        "static-{}.jsonl",
        sweep_fingerprint(&config).unwrap()
    ));
    let text = std::fs::read_to_string(&log).unwrap();
    let mut lines: Vec<String> = text.lines().map(String::from).collect();
    assert_eq!(lines.len(), total);
    // Re-key the last line's (valid) cell to an out-of-range index, and
    // append a u64::MAX line that a blind `as usize` cast would mangle on
    // 32-bit targets. Both must be ignored: the displaced cell is
    // recomputed, everything else resumes, output stays byte-identical.
    let last = lines.pop().unwrap();
    let cell = last.split_once(',').unwrap().1;
    lines.push(format!("[{},{cell}", total + 7));
    lines.push(format!("[{},{cell}", u64::MAX));
    std::fs::write(&log, format!("{}\n", lines.join("\n"))).unwrap();
    let (report, stats) = run_sweep_partition(&config, &run).unwrap();
    assert_eq!((stats.resumed, stats.computed), (total - 1, 1));
    assert_eq!(as_full_report(report), fresh);
    let _ = std::fs::remove_dir_all(&dir);
}
