//! Cross-crate integration tests of the full POMBM pipelines: workload
//! generation → privacy mechanism → online matching → metric collection.

use pombm::{
    empirical_competitive_ratio, run, run_case_study, Algorithm, CaseStudyAlgorithm,
    PipelineConfig, Server,
};
use pombm_geom::seeded_rng;
use pombm_matching::HstGreedyEngine;
use pombm_workload::{chengdu, synthetic, SyntheticParams};

fn avg_distance(algo: Algorithm, instance: &pombm_workload::Instance, eps: f64, reps: u64) -> f64 {
    (0..reps)
        .map(|rep| {
            let config = PipelineConfig {
                epsilon: eps,
                engine: HstGreedyEngine::Indexed,
                euclid_cells: 16,
                ..PipelineConfig::default()
            };
            run(algo, instance, &config, rep).metrics.total_distance
        })
        .sum::<f64>()
        / reps as f64
}

/// The paper's headline claim (Figs. 6-7): under a tight privacy budget, TBF
/// produces notably shorter total distances than both Laplace baselines.
#[test]
fn tbf_beats_laplace_baselines_at_tight_epsilon() {
    let params = SyntheticParams {
        num_tasks: 300,
        num_workers: 500,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(11, 0));
    let eps = 0.2;
    let reps = 5;
    let tbf = avg_distance(Algorithm::Tbf, &instance, eps, reps);
    let lap_gr = avg_distance(Algorithm::LapGr, &instance, eps, reps);
    let lap_hg = avg_distance(Algorithm::LapHg, &instance, eps, reps);
    assert!(
        tbf < lap_gr && tbf < lap_hg,
        "TBF {tbf} should beat Lap-GR {lap_gr} and Lap-HG {lap_hg} at eps = {eps}"
    );
}

/// Fig. 7a's second observation: TBF is relatively insensitive to ε while
/// the Laplace baselines degrade sharply as ε → 0.2.
#[test]
fn tbf_is_less_epsilon_sensitive_than_laplace() {
    let params = SyntheticParams {
        num_tasks: 300,
        num_workers: 500,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(12, 0));
    let reps = 5;
    let sensitivity = |algo: Algorithm| -> f64 {
        let tight = avg_distance(algo, &instance, 0.2, reps);
        let loose = avg_distance(algo, &instance, 1.0, reps);
        tight / loose
    };
    let tbf = sensitivity(Algorithm::Tbf);
    let lap_gr = sensitivity(Algorithm::LapGr);
    assert!(
        tbf < lap_gr,
        "TBF ratio (eps 0.2 / eps 1.0) {tbf} should be flatter than Lap-GR {lap_gr}"
    );
}

/// Fig. 6b: adding workers reduces total distance for every algorithm.
#[test]
fn more_workers_shorten_total_distance() {
    for algo in Algorithm::ALL {
        let dist_for = |workers: usize| -> f64 {
            let params = SyntheticParams {
                num_tasks: 200,
                num_workers: workers,
                ..SyntheticParams::default()
            };
            let instance = synthetic::generate(&params, &mut seeded_rng(13, 0));
            avg_distance(algo, &instance, 0.6, 4)
        };
        let few = dist_for(250);
        let many = dist_for(1000);
        assert!(
            many < few,
            "{algo}: 1000 workers ({many}) should beat 250 workers ({few})"
        );
    }
}

/// The real-data pipeline end to end: Chengdu-like day, normalized units.
#[test]
fn chengdu_day_runs_through_all_pipelines() {
    let city = chengdu::CityModel::generate(5);
    let mut instance = chengdu::generate_day(&city, 0, 2000, 5).scaled(1.0 / 50.0);
    instance.tasks.truncate(400);
    instance.validate().unwrap();
    for algo in Algorithm::ALL {
        let config = PipelineConfig {
            epsilon: 0.6,
            euclid_cells: 16,
            engine: HstGreedyEngine::Indexed,
            ..PipelineConfig::default()
        };
        let result = run(algo, &instance, &config, 0);
        assert_eq!(result.matching.size(), 400, "{algo}");
        assert!(result.matching.is_valid(), "{algo}");
    }
}

/// The case study end to end: TBF should not lose to Prob on matching size
/// under the default setting (the paper reports 5.6%-47.7% gains).
#[test]
fn case_study_tbf_at_least_matches_prob() {
    let params = SyntheticParams {
        num_tasks: 400,
        num_workers: 800,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate_with_radii(&params, &mut seeded_rng(14, 0));
    let server = Server::new(instance.region, 32, 14);
    let avg = |algo: CaseStudyAlgorithm| -> f64 {
        (0..5)
            .map(|rep| run_case_study(algo, &instance, &server, 0.6, rep).matching_size as f64)
            .sum::<f64>()
            / 5.0
    };
    let prob = avg(CaseStudyAlgorithm::Prob);
    let tbf = avg(CaseStudyAlgorithm::Tbf);
    assert!(
        tbf >= prob * 0.95,
        "TBF matching size {tbf} should be at least on par with Prob {prob}"
    );
}

/// Competitive ratio sanity: the empirical ratio is finite, at least 1, and
/// within a generous multiple of the theory's scale for mid ε.
#[test]
fn competitive_ratio_is_bounded() {
    let params = SyntheticParams {
        num_tasks: 80,
        num_workers: 120,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(15, 0));
    let config = PipelineConfig {
        epsilon: 0.6,
        ..PipelineConfig::default()
    };
    let report = empirical_competitive_ratio(Algorithm::Tbf.spec(), &instance, &config, 5).unwrap();
    let (ratio, avg, opt) = (report.ratio, report.mean_distance, report.opt_distance);
    assert!(ratio >= 1.0 - 1e-9);
    assert!(
        ratio < 100.0,
        "ratio {ratio} (avg {avg} / opt {opt}) looks unbounded"
    );
}
