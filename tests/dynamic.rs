//! Correctness harness for the registry-driven dynamic-fleet pipeline:
//!
//! 1. a golden test pinning that `run_dynamic_spec` with the `hst-greedy`
//!    dynamic matcher reproduces the pre-registry hardwired driver
//!    seed-for-seed (fingerprints recorded from the last hardwired build,
//!    same seeds — the same pattern as `tests/registry.rs`);
//! 2. proptest invariants — no registered dynamic matcher ever assigns a
//!    worker outside its shift window or the same worker twice, and the
//!    dynamic sweep is bit-identical across shard counts `{1, 2, 7}`;
//! 3. golden tests pinning the `DynamicSweepReport` / `DynamicSweepCell` /
//!    `DynamicMeasurement` JSON field names, so the CLI's `--json`
//!    contract cannot drift silently.

use pombm::sweep::{run_dynamic_sweep, DynamicSweepConfig};
use pombm::{
    dynamic_competitive_ratio, dynamic_offline_optimum, dynamic_offline_optimum_with_threads,
    registry, run_dynamic_spec, run_dynamic_with, ArrivalProcess, DynamicConfig, RatioError,
    DEFAULT_DYNAMIC_ORACLE,
};
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_workload::shifts::{Shift, ShiftPlan};
use pombm_workload::{synthetic, Instance, SyntheticParams};
use proptest::prelude::*;

fn instance(tasks: usize, workers: usize, seed: u64) -> Instance {
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, &mut seeded_rng(seed, 0))
}

fn fnv(pairs: &[(usize, usize)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(t, w) in pairs {
        for v in [t as u64, w as u64] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

/// The golden scenario: 80 tasks over a 500 s window, 60 workers on
/// uniform 50–200 s shifts, `grid_side` 16, ε 0.6.
fn golden_scenario(seed: u64) -> (Instance, Vec<f64>, ShiftPlan, DynamicConfig) {
    let inst = instance(80, 60, seed);
    let times =
        ArrivalProcess::Uniform { window_secs: 500.0 }.timestamps(80, &mut seeded_rng(seed, 99));
    let plan = ShiftPlan::uniform(60, 500.0, 50.0, 200.0, &mut seeded_rng(seed, 7));
    let config = DynamicConfig {
        epsilon: 0.6,
        grid_side: 16,
        seed,
    };
    (inst, times, plan, config)
}

/// Fingerprints recorded from the pre-registry dynamic driver (stage 2
/// hardwired to `DynamicHstGreedy`): `(mechanism, seed)` →
/// `(pair fnv, assigned, dropped, peak_available)` on [`golden_scenario`].
const GOLDEN: [(&str, u64, u64, usize, usize, usize); 12] = [
    ("hst", 0, 0xF3BB46DB5826EF15, 59, 21, 6),
    ("hst", 11, 0x932CA01B98DCC727, 60, 20, 5),
    ("hst", 42, 0x930820F94B2B5FC9, 58, 22, 7),
    ("laplace", 0, 0x3D39867EB0D53ED5, 59, 21, 6),
    ("laplace", 11, 0x83C0740143CF70A7, 60, 20, 5),
    ("laplace", 42, 0x6ACF06B3D23A19F1, 59, 21, 8),
    ("exp", 0, 0x7E4160A6F0C94495, 59, 21, 6),
    ("exp", 11, 0x90E7F6E9C38AF627, 60, 20, 5),
    ("exp", 42, 0x689F5BFC3F671A49, 58, 22, 7),
    ("identity", 0, 0xF3BB46DB5826EF15, 59, 21, 6),
    ("identity", 11, 0x932CA01B98DCC727, 60, 20, 5),
    ("identity", 42, 0x930820F94B2B5FC9, 58, 22, 7),
];

#[test]
fn hst_greedy_through_the_spec_driver_matches_the_hardwired_driver_exactly() {
    let matcher = registry()
        .dynamic_matcher("hst-greedy")
        .expect("registered");
    for (mech_name, seed, want_fnv, want_assigned, want_dropped, want_peak) in GOLDEN {
        let mechanism = registry().mechanism(mech_name).expect("registered");
        let (inst, times, plan, config) = golden_scenario(seed);
        // The legacy entry point (now a thin delegation)...
        let legacy = run_dynamic_with(&inst, &times, &plan, &config, mechanism.as_ref())
            .unwrap_or_else(|e| panic!("{mech_name}/{seed}: {e}"));
        // ...and the explicit spec-driver path.
        let spec = run_dynamic_spec(
            &inst,
            &times,
            &plan,
            &config,
            mechanism.as_ref(),
            matcher.as_ref(),
        )
        .unwrap_or_else(|e| panic!("{mech_name}/{seed}: {e}"));
        assert_eq!(
            legacy.pairs, spec.pairs,
            "{mech_name}/{seed}: legacy and spec paths diverged"
        );
        assert_eq!(
            legacy.total_distance, spec.total_distance,
            "{mech_name}/{seed}"
        );
        assert_eq!(
            fnv(&spec.pairs),
            want_fnv,
            "{mech_name}/{seed}: drifted from the pre-registry hardwired driver"
        );
        assert_eq!(spec.pairs.len(), want_assigned, "{mech_name}/{seed}");
        assert_eq!(spec.dropped_tasks, want_dropped, "{mech_name}/{seed}");
        assert_eq!(spec.peak_available, want_peak, "{mech_name}/{seed}");
    }
}

proptest! {
    /// No registered dynamic matcher ever assigns a withdrawn (off-shift)
    /// worker: every assigned pair's worker was on shift at the task's
    /// arrival time, no worker serves twice, and reruns reproduce the
    /// outcome bit-for-bit.
    #[test]
    fn no_dynamic_matcher_assigns_a_withdrawn_worker(
        seed in 0u64..5_000,
        tasks in 10usize..60,
        workers in 5usize..40,
    ) {
        let inst = instance(tasks, workers, seed);
        let times = ArrivalProcess::Uniform { window_secs: 300.0 }
            .timestamps(tasks, &mut seeded_rng(seed, 99));
        let plan = ShiftPlan::uniform(workers, 300.0, 20.0, 120.0, &mut seeded_rng(seed, 7));
        let config = DynamicConfig { epsilon: 0.6, grid_side: 16, seed };
        let mechanism = registry().mechanism("identity").unwrap();
        for matcher in registry().dynamic_matchers() {
            let out = run_dynamic_spec(
                &inst, &times, &plan, &config, mechanism.as_ref(), matcher.as_ref(),
            ).map_err(|e| TestCaseError::fail(format!("{}: {e}", matcher.name())))?;
            prop_assert_eq!(out.pairs.len() + out.dropped_tasks, tasks, "{}", matcher.name());
            let mut seen = std::collections::HashSet::new();
            for &(t, w) in &out.pairs {
                prop_assert!(seen.insert(w), "{}: worker {} served twice", matcher.name(), w);
                let shift = &plan.shifts[w];
                prop_assert!(
                    shift.covers(times[t]),
                    "{}: worker {} assigned at {} outside shift [{}, {})",
                    matcher.name(), w, times[t], shift.start, shift.end
                );
            }
            let again = run_dynamic_spec(
                &inst, &times, &plan, &config, mechanism.as_ref(), matcher.as_ref(),
            ).map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&out.pairs, &again.pairs,
                "{} is not reproducible", matcher.name());
        }
    }

    /// Dynamic sweep output is a pure function of the seed: shard counts
    /// 1, 2 and 7 serialize to byte-identical JSON (assignment rates and
    /// all other cell fields included).
    #[test]
    fn dynamic_sweep_is_bit_identical_across_shard_counts(seed in 0u64..10_000) {
        let config = |shards: usize| DynamicSweepConfig {
            mechanisms: vec!["identity".into(), "hst".into()],
            matchers: vec!["hst-greedy".into(), "random".into()],
            scenarios: Vec::new(),
            shift_plans: vec!["always-on".into(), "short".into()],
            sizes: vec![10, 14],
            epsilons: vec![0.5],
            shards,
            timings: false,
            ratio: false,
            grid_side: 16,
            seed,
        };
        let baseline = serde_json::to_string(&run_dynamic_sweep(&config(1)).unwrap()).unwrap();
        for shards in [2usize, 7] {
            let sharded =
                serde_json::to_string(&run_dynamic_sweep(&config(shards)).unwrap()).unwrap();
            prop_assert_eq!(&baseline, &sharded, "shards = {} changed the sweep", shards);
        }
    }
}

/// The full `mechanism × dynamic-matcher × plan` registry product
/// completes at one size/ε: every measurable cell accounts for all tasks,
/// and exactly the blind × location-aware cells carry typed errors.
#[test]
fn full_dynamic_registry_product_sweep_completes() {
    let config = DynamicSweepConfig {
        mechanisms: Vec::new(),  // all 5
        matchers: Vec::new(),    // all 3
        scenarios: Vec::new(),   // just uniform
        shift_plans: Vec::new(), // all 3
        sizes: vec![12],
        epsilons: vec![0.6],
        shards: 4,
        timings: false,
        ratio: false,
        grid_side: 16,
        seed: 33,
    };
    let report = run_dynamic_sweep(&config).unwrap();
    let mechanisms = registry().mechanisms().len();
    let matchers = registry().dynamic_matchers().len();
    assert_eq!(report.cells.len(), mechanisms * matchers * 3);

    for cell in &report.cells {
        match (&cell.measurement, &cell.error) {
            (Some(m), None) => {
                assert_eq!(
                    m.assigned + m.dropped,
                    12,
                    "{}+{}+{}: tasks unaccounted",
                    cell.mechanism,
                    cell.matcher,
                    cell.plan
                );
                if cell.plan == "always-on" {
                    assert_eq!(
                        m.assignment_rate, 1.0,
                        "{}+{}",
                        cell.mechanism, cell.matcher
                    );
                }
            }
            (None, Some(e)) => {
                assert_eq!(
                    cell.mechanism, "blind",
                    "unexpected failure {}+{}: {e}",
                    cell.mechanism, cell.matcher
                );
                assert_ne!(cell.matcher, "random", "blind+random is measurable: {e}");
            }
            other => panic!(
                "{}+{}: cell must hold exactly one of measurement/error, got {other:?}",
                cell.mechanism, cell.matcher
            ),
        }
    }
    let unmeasurable = (matchers - 1) * 3; // blind × location-aware × plans
    assert_eq!(report.failed().count(), unmeasurable);
    assert_eq!(
        report.measured().count(),
        mechanisms * matchers * 3 - unmeasurable
    );
}

/// The `DynamicSweepReport` / `DynamicSweepCell` / `DynamicMeasurement`
/// JSON field names are a public contract (CLI `--json`, the CI golden
/// diff): pin them exactly, in declaration order.
#[test]
fn dynamic_sweep_json_fields_are_pinned() {
    let config = DynamicSweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["hst-greedy".into()],
        scenarios: Vec::new(),
        shift_plans: vec!["always-on".into()],
        sizes: vec![8],
        epsilons: vec![0.6],
        shards: 1,
        timings: false,
        ratio: false,
        grid_side: 16,
        seed: 1,
    };
    let value = serde_json::to_value(&run_dynamic_sweep(&config).unwrap()).unwrap();
    let keys: Vec<&str> = value
        .as_object()
        .expect("a report serializes as an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(keys, ["seed", "horizon", "cells"]);
    let cell = &value["cells"].as_array().unwrap()[0];
    let cell_keys: Vec<&str> = cell
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        cell_keys,
        [
            "mechanism",
            "matcher",
            "plan",
            "num_tasks",
            "num_workers",
            "epsilon",
            "measurement",
            "error",
        ],
        "DynamicSweepCell JSON contract drifted"
    );
    let m_keys: Vec<&str> = cell["measurement"]
        .as_object()
        .expect("always-on cell is measurable")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        m_keys,
        [
            "assigned",
            "dropped",
            "assignment_rate",
            "total_distance",
            "peak_available",
        ],
        "DynamicMeasurement JSON contract drifted"
    );
}

/// Exhaustive optimum over the time-expanded feasibility graph: every task
/// in arrival order tries every feasible unused worker or a drop;
/// maximum cardinality wins, ties broken by minimum total distance —
/// Definition 8's clairvoyant benchmark, spelled out.
fn brute_force_optimum(instance: &Instance, times: &[f64], plan: &ShiftPlan) -> (usize, f64) {
    #[allow(clippy::too_many_arguments)] // explicit search state, as in the solver's own oracle
    fn go(
        t: usize,
        used: &mut [bool],
        instance: &Instance,
        times: &[f64],
        plan: &ShiftPlan,
        cost: f64,
        size: usize,
        best: &mut (usize, f64),
    ) {
        if t == times.len() {
            if size > best.0 || (size == best.0 && cost < best.1) {
                *best = (size, cost);
            }
            return;
        }
        go(t + 1, used, instance, times, plan, cost, size, best); // drop task t
        for w in 0..instance.num_workers() {
            let s = &plan.shifts[w];
            if !used[w] && s.start <= times[t] && times[t] < s.end {
                used[w] = true;
                let c = cost + instance.tasks[t].dist(&instance.workers[w]);
                go(t + 1, used, instance, times, plan, c, size + 1, best);
                used[w] = false;
            }
        }
    }
    let mut best = (0, f64::INFINITY);
    let mut used = vec![false; instance.num_workers()];
    go(0, &mut used, instance, times, plan, 0.0, 0, &mut best);
    best
}

/// Checks `dynamic_offline_optimum` against [`brute_force_optimum`] on one
/// timeline, including the typed infeasibility error and bit-identity
/// across thread counts 2 and 7.
fn check_against_brute_force(instance: &Instance, times: &[f64], plan: &ShiftPlan, label: &str) {
    let (size, cost) = brute_force_optimum(instance, times, plan);
    match dynamic_offline_optimum(instance, times, plan) {
        Ok(opt) => {
            assert_eq!(opt.size(), size, "{label}: cardinality");
            assert!(
                (opt.total_cost - cost).abs() < 1e-9,
                "{label}: cost {} vs brute force {cost}",
                opt.total_cost
            );
            for threads in [2, 7] {
                let sharded =
                    dynamic_offline_optimum_with_threads(instance, times, plan, threads).unwrap();
                assert_eq!(sharded.pairs, opt.pairs, "{label}: threads {threads}");
                assert_eq!(sharded.dropped, opt.dropped, "{label}: threads {threads}");
                assert_eq!(
                    sharded.total_cost.to_bits(),
                    opt.total_cost.to_bits(),
                    "{label}: threads {threads}"
                );
            }
        }
        Err(RatioError::InfeasibleTimeline { dropped }) => {
            assert_eq!(
                size, 0,
                "{label}: solver claims infeasible, brute force assigns"
            );
            assert_eq!(dropped, times.len(), "{label}");
        }
        Err(e) => panic!("{label}: unexpected error {e}"),
    }
}

/// Every realizable 3×3 shift-window pattern — all integer windows over
/// the arrival grid, plus a window overlapping no arrival at all — agrees
/// with the exhaustive brute force on a tie-heavy integer geometry
/// (aligned rows one unit apart, so distances repeat across pairs).
#[test]
fn clairvoyant_optimum_matches_brute_force_on_every_window_pattern() {
    let instance = Instance::new(
        Rect::square(4.0),
        vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ],
        vec![
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
        ],
    );
    let times = [0.5, 1.5, 2.5];
    // All integer windows in [0, 3] plus one of zero overlap with every
    // arrival (shifts must be non-empty, so it sits past the last task).
    let mut windows = vec![(3.0, 4.0)];
    for a in 0..3u32 {
        for b in (a + 1)..=3 {
            windows.push((f64::from(a), f64::from(b)));
        }
    }
    for &(a0, b0) in &windows {
        for &(a1, b1) in &windows {
            for &(a2, b2) in &windows {
                let plan = ShiftPlan {
                    horizon: 4.0,
                    shifts: vec![
                        Shift {
                            worker: 0,
                            start: a0,
                            end: b0,
                        },
                        Shift {
                            worker: 1,
                            start: a1,
                            end: b1,
                        },
                        Shift {
                            worker: 2,
                            start: a2,
                            end: b2,
                        },
                    ],
                };
                let label = format!("windows [{a0},{b0}) [{a1},{b1}) [{a2},{b2})");
                check_against_brute_force(&instance, &times, &plan, &label);
            }
        }
    }
}

/// 6×6 timelines with arithmetic (deterministic, tie-heavy integer-grid)
/// geometries and windows, including per-worker zero-coverage shifts,
/// agree with the exhaustive brute force — the largest size where full
/// enumeration is still cheap.
#[test]
fn clairvoyant_optimum_matches_brute_force_at_six_by_six() {
    for seed in 0..25u64 {
        let tasks: Vec<Point> = (0..6)
            .map(|i| Point::new(((seed + 2 * i) % 5) as f64, ((seed / 3 + i) % 4) as f64))
            .collect();
        let workers: Vec<Point> = (0..6)
            .map(|w| Point::new(((3 * seed + w) % 5) as f64, ((seed + 2 * w) % 4) as f64))
            .collect();
        let instance = Instance::new(Rect::square(6.0), tasks, workers);
        let times: Vec<f64> = (0..6).map(|t| t as f64 + 0.5).collect();
        let shifts = (0..6u64)
            .map(|w| {
                if (seed + w) % 7 == 0 {
                    // Zero coverage: on shift only after the last arrival.
                    Shift {
                        worker: w as usize,
                        start: 6.0,
                        end: 7.0,
                    }
                } else {
                    let start = ((seed + 3 * w) % 4) as f64;
                    let len = 1.0 + ((seed / 2 + w) % 3) as f64;
                    Shift {
                        worker: w as usize,
                        start,
                        end: start + len,
                    }
                }
            })
            .collect();
        let plan = ShiftPlan {
            horizon: 7.0,
            shifts,
        };
        check_against_brute_force(&instance, &times, &plan, &format!("seed {seed}"));
    }
}

proptest! {
    /// With every worker on shift for the whole horizon and more workers
    /// than tasks, every registered pairing matcher reaches the oracle's
    /// cardinality, so its total distance is bounded below by the
    /// clairvoyant optimum: the empirical competitive ratio is ≥ 1 on
    /// every repetition.
    #[test]
    fn every_dynamic_matcher_is_at_least_the_oracle_under_full_coverage(
        seed in 0u64..2_000,
    ) {
        let inst = instance(24, 30, seed);
        let times = ArrivalProcess::Uniform { window_secs: 200.0 }
            .timestamps(24, &mut seeded_rng(seed, 99));
        let plan = ShiftPlan::always_on(30, 200.0);
        let config = DynamicConfig { epsilon: 0.6, grid_side: 16, seed };
        let mechanism = registry().mechanism("identity").unwrap();
        for matcher in registry().dynamic_matchers() {
            let report = dynamic_competitive_ratio(
                &inst, &times, &plan, &config, mechanism.as_ref(), matcher.as_ref(), 2,
            ).map_err(|e| TestCaseError::fail(format!("{}: {e}", matcher.name())))?;
            prop_assert!(
                report.min_ratio >= 1.0 - 1e-9,
                "{}: ratio {} beat the clairvoyant optimum",
                matcher.name(), report.min_ratio
            );
        }
    }
}

/// A ratio-enabled dynamic sweep over the full matcher catalog (the
/// `dynamic-opt` oracle included) is bit-identical across shard counts
/// `{1, 2, 7}`, every oracle cell reports a ratio of exactly 1.0, and
/// every measured cell carries a ratio.
#[test]
fn ratio_sweep_is_shard_invariant_and_pins_the_oracle_row() {
    let config = |shards: usize| DynamicSweepConfig {
        mechanisms: vec!["identity".into(), "hst".into()],
        matchers: Vec::new(), // full catalog: the oracle joins the axis
        scenarios: Vec::new(),
        shift_plans: vec!["always-on".into(), "short".into()],
        sizes: vec![12],
        epsilons: vec![0.6],
        shards,
        timings: false,
        ratio: true,
        grid_side: 16,
        seed: 5,
    };
    let baseline = run_dynamic_sweep(&config(1)).unwrap();
    let json = serde_json::to_string(&baseline).unwrap();
    for shards in [2usize, 7] {
        let sharded = serde_json::to_string(&run_dynamic_sweep(&config(shards)).unwrap()).unwrap();
        assert_eq!(json, sharded, "shards = {shards} changed the ratio sweep");
    }
    let oracle_cells: Vec<_> = baseline
        .cells
        .iter()
        .filter(|c| c.matcher == DEFAULT_DYNAMIC_ORACLE)
        .collect();
    assert!(
        !oracle_cells.is_empty(),
        "the oracle must join the matcher axis"
    );
    for cell in &oracle_cells {
        assert_eq!(
            cell.competitive_ratio,
            Some(1.0),
            "{}+{}: the oracle against itself must be exactly 1.0",
            cell.mechanism,
            cell.plan
        );
    }
    for cell in baseline.cells.iter().filter(|c| c.measurement.is_some()) {
        assert!(
            cell.competitive_ratio.is_some(),
            "{}+{}+{}: measured ratio cell without a ratio",
            cell.mechanism,
            cell.matcher,
            cell.plan
        );
    }
}
