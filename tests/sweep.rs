//! Correctness harness for the registry-wide competitive-ratio subsystem:
//!
//! 1. proptest invariants — every registered pairing's measured ratio is
//!    ≥ 1 (the offline optimum really is a lower bound end-to-end), the
//!    `identity × offline-opt` oracle reports exactly 1.0, and sweep output
//!    is bit-identical across shard counts at a fixed seed;
//! 2. a full-registry product sweep that must complete with every
//!    measurable cell ≥ 1 and every unmeasurable cell carrying a typed
//!    error message;
//! 3. golden tests pinning the `RatioReport`/`SweepReport` JSON field
//!    names and a seeded deterministic 3-pairing sweep, so the CLI's
//!    `--json` contract cannot drift silently.

use pombm::ratio::{empirical_competitive_ratio, offline_optimum, RatioError};
use pombm::sweep::{run_sweep, sweep_instance, SweepConfig};
use pombm::{registry, PipelineConfig};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use proptest::prelude::*;

fn instance(tasks: usize, workers: usize, seed: u64) -> Instance {
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, &mut seeded_rng(seed, 0))
}

fn fast_config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        grid_side: 16,
        seed,
        ..PipelineConfig::default()
    }
}

proptest! {
    /// OPT is a true lower bound for every registered pairing: the measured
    /// ratio (and even its per-repetition minimum) never drops below 1.
    #[test]
    fn every_registered_pairing_ratio_is_at_least_one(
        seed in 0u64..10_000,
        extra in 0usize..8,
    ) {
        let inst = instance(10, 10 + extra, seed);
        let config = fast_config(seed);
        for spec in registry().specs() {
            let report = empirical_competitive_ratio(spec, &inst, &config, 2)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", spec.name())))?;
            prop_assert!(
                report.min_ratio >= 1.0 - 1e-9,
                "{}: min ratio {} below 1 (opt {})",
                spec.name(), report.min_ratio, report.opt_distance
            );
            prop_assert!(report.ratio >= 1.0 - 1e-9, "{}", spec.name());
            prop_assert!(report.max_ratio >= report.ratio, "{}", spec.name());
        }
    }

    /// The sanity oracle: the exact offline matcher fed true locations
    /// reproduces OPT bit-for-bit, in both rectangular orientations.
    #[test]
    fn identity_offline_opt_ratio_is_exactly_one(
        seed in 0u64..10_000,
        tasks in 2usize..24,
        workers in 2usize..24,
    ) {
        let inst = instance(tasks, workers, seed);
        let spec = registry().compose("identity", "offline-opt")
            .expect("both registered");
        let report = empirical_competitive_ratio(&spec, &inst, &fast_config(seed), 3)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.ratio, 1.0, "ratio drifted off the oracle");
        prop_assert_eq!(report.min_ratio, 1.0);
        prop_assert_eq!(report.max_ratio, 1.0);
        let opt = offline_optimum(&inst).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for d in &report.distances {
            prop_assert_eq!(*d, opt, "a repetition diverged from OPT bitwise");
        }
    }

    /// Sweep output is a pure function of the seed: shard counts 1, 2 and 7
    /// serialize to byte-identical JSON.
    #[test]
    fn sweep_is_bit_identical_across_shard_counts(seed in 0u64..10_000) {
        let config = |shards: usize| SweepConfig {
            mechanisms: vec!["identity".into(), "laplace".into()],
            matchers: vec!["greedy".into(), "offline-opt".into()],
            scenarios: Vec::new(),
            sizes: vec![8, 12],
            epsilons: vec![0.5],
            repetitions: 2,
            shards,
            timings: false,
            base: fast_config(seed),
        };
        let baseline = serde_json::to_string(&run_sweep(&config(1)).unwrap()).unwrap();
        for shards in [2usize, 7] {
            let sharded = serde_json::to_string(&run_sweep(&config(shards)).unwrap()).unwrap();
            prop_assert_eq!(&baseline, &sharded, "shards = {} changed the sweep", shards);
        }
    }
}

/// The full `mechanism × matcher` registry product completes at one
/// size/ε: every measurable pairing reports ratio ≥ 1, every incompatible
/// pairing (the blind mechanism with location-aware matchers) records a
/// typed error, and the oracle cell is exactly 1.0.
#[test]
fn full_registry_product_sweep_completes() {
    let config = SweepConfig {
        mechanisms: Vec::new(), // all 5
        matchers: Vec::new(),   // all 8
        scenarios: Vec::new(),  // just uniform
        sizes: vec![14],
        epsilons: vec![0.6],
        repetitions: 2,
        shards: 4,
        timings: false,
        base: fast_config(33),
    };
    let report = run_sweep(&config).unwrap();
    let mechanisms = registry().mechanisms().len();
    let matchers = registry().matchers().len();
    assert_eq!(report.cells.len(), mechanisms * matchers);

    for cell in &report.cells {
        match (&cell.report, &cell.error) {
            (Some(r), None) => assert!(
                r.min_ratio >= 1.0 - 1e-9,
                "{}+{}: ratio {} below 1",
                cell.mechanism,
                cell.matcher,
                r.min_ratio
            ),
            (None, Some(e)) => {
                // Only the blind mechanism composed with a location-aware
                // matcher is unmeasurable at this size.
                assert_eq!(
                    cell.mechanism, "blind",
                    "unexpected failure {}+{}: {e}",
                    cell.mechanism, cell.matcher
                );
                assert_ne!(cell.matcher, "random", "blind+random is measurable: {e}");
            }
            other => panic!(
                "{}+{}: cell must hold exactly one of report/error, got {other:?}",
                cell.mechanism, cell.matcher
            ),
        }
    }
    let (_, oracle) = report
        .measured()
        .find(|(c, _)| c.mechanism == "identity" && c.matcher == "offline-opt")
        .expect("oracle cell present");
    assert_eq!(oracle.ratio, 1.0);

    let measurable = mechanisms * matchers - (matchers - 1); // blind × location-aware
    assert_eq!(report.measured().count(), measurable);
    assert_eq!(report.failed().count(), matchers - 1);
}

/// The `RatioReport` JSON field names are a public contract (CLI `--json`,
/// sweep cells): pin them exactly, in declaration order.
#[test]
fn ratio_report_json_fields_are_pinned() {
    let inst = instance(10, 12, 3);
    let spec = registry().spec("tbf").unwrap();
    let report = empirical_competitive_ratio(spec, &inst, &fast_config(3), 2).unwrap();
    let value = serde_json::to_value(&report).unwrap();
    let keys: Vec<&str> = value
        .as_object()
        .expect("a report serializes as an object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        [
            "algorithm",
            "mechanism",
            "matcher",
            "epsilon",
            "num_tasks",
            "num_workers",
            "repetitions",
            "opt_distance",
            "mean_distance",
            "ratio",
            "min_ratio",
            "max_ratio",
            "distances",
        ],
        "RatioReport JSON contract drifted"
    );
}

/// Same pin for the sweep envelope and its cells.
#[test]
fn sweep_report_json_fields_are_pinned() {
    let config = SweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["offline-opt".into()],
        scenarios: Vec::new(),
        sizes: vec![8],
        repetitions: 1,
        base: fast_config(1),
        ..SweepConfig::default()
    };
    let value = serde_json::to_value(&run_sweep(&config).unwrap()).unwrap();
    let keys: Vec<&str> = value
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(keys, ["seed", "repetitions", "cells"]);
    let cell_keys: Vec<&str> = value["cells"].as_array().unwrap()[0]
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        cell_keys,
        [
            "mechanism",
            "matcher",
            "num_tasks",
            "num_workers",
            "epsilon",
            "report",
            "error",
        ],
        "SweepCell JSON contract drifted"
    );
}

/// Golden sweep: a seeded 3-pairing sweep of fully deterministic components
/// (the identity mechanism adds no noise; greedy, kd-greedy and offline-opt
/// are deterministic matchers) must serialize to exactly this JSON. If this
/// test fails, the CLI `--json` contract changed — update deliberately.
#[test]
fn golden_three_pairing_sweep_json() {
    let config = SweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["offline-opt".into(), "greedy".into(), "kd-greedy".into()],
        scenarios: Vec::new(),
        sizes: vec![6],
        epsilons: vec![0.8],
        repetitions: 2,
        shards: 2,
        timings: false,
        base: fast_config(7),
    };
    let json = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    assert_eq!(json, GOLDEN_SWEEP_JSON, "golden sweep JSON drifted");
}

/// Recorded from the build that introduced the sweep engine (seed 7).
const GOLDEN_SWEEP_JSON: &str = "{\"seed\":7,\"repetitions\":2,\"cells\":[{\"mechanism\":\"identity\",\"matcher\":\"offline-opt\",\"num_tasks\":6,\"num_workers\":6,\"epsilon\":0.8,\"report\":{\"algorithm\":\"identity+offline-opt\",\"mechanism\":\"identity\",\"matcher\":\"offline-opt\",\"epsilon\":0.8,\"num_tasks\":6,\"num_workers\":6,\"repetitions\":2,\"opt_distance\":112.31898315485866,\"mean_distance\":112.31898315485866,\"ratio\":1.0,\"min_ratio\":1.0,\"max_ratio\":1.0,\"distances\":[112.31898315485866,112.31898315485866]},\"error\":null},{\"mechanism\":\"identity\",\"matcher\":\"greedy\",\"num_tasks\":6,\"num_workers\":6,\"epsilon\":0.8,\"report\":{\"algorithm\":\"identity+greedy\",\"mechanism\":\"identity\",\"matcher\":\"greedy\",\"epsilon\":0.8,\"num_tasks\":6,\"num_workers\":6,\"repetitions\":2,\"opt_distance\":112.31898315485866,\"mean_distance\":117.48329029993366,\"ratio\":1.0459789342817922,\"min_ratio\":1.0100578312461672,\"max_ratio\":1.0819000373174175,\"distances\":[113.44866853317133,121.51791206669597]},\"error\":null},{\"mechanism\":\"identity\",\"matcher\":\"kd-greedy\",\"num_tasks\":6,\"num_workers\":6,\"epsilon\":0.8,\"report\":{\"algorithm\":\"identity+kd-greedy\",\"mechanism\":\"identity\",\"matcher\":\"kd-greedy\",\"epsilon\":0.8,\"num_tasks\":6,\"num_workers\":6,\"repetitions\":2,\"opt_distance\":112.31898315485866,\"mean_distance\":140.26503738617282,\"ratio\":1.2488097153869693,\"min_ratio\":1.0170450637685,\"max_ratio\":1.4805743670054383,\"distances\":[166.29660738719934,114.2334673851463]},\"error\":null}]}";

/// Degenerate measurements are typed errors end-to-end, not panics.
#[test]
fn degenerate_ratio_inputs_are_typed_errors() {
    let spec = registry().spec("tbf").unwrap();
    let config = fast_config(0);

    let empty = sweep_instance(0, 0);
    assert!(matches!(
        empirical_competitive_ratio(spec, &empty, &config, 2),
        Err(RatioError::EmptyInstance { .. })
    ));
    assert!(matches!(
        offline_optimum(&empty),
        Err(RatioError::EmptyInstance {
            num_tasks: 0,
            num_workers: 0
        })
    ));

    let inst = instance(10, 10, 1);
    assert!(matches!(
        empirical_competitive_ratio(spec, &inst, &config, 0),
        Err(RatioError::ZeroRepetitions)
    ));
}
