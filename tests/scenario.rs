//! Invariants of the workload-scenario axis:
//!
//! 1. proptest invariants — for every registered scenario, the sweep JSON
//!    is byte-identical across shard counts {1, 2, 7}, in-cell thread
//!    counts, and a partitioned run merged back with [`merge_static`], on
//!    both flavours;
//! 2. the back-compat contract — an empty `scenarios` axis and an explicit
//!    `["uniform"]` produce byte-identical reports *and* identical config
//!    fingerprints, so pre-scenario checkpoints and partials still merge;
//! 3. golden pins — one output fingerprint per non-default scenario, so a
//!    drive-by change to any generator (placement, demand curve, city
//!    model) fails loudly instead of silently rewriting every downstream
//!    measurement.

use pombm::merge::{merge_dynamic, merge_static};
use pombm::sweep::{
    dynamic_sweep_fingerprint, run_dynamic_sweep, run_dynamic_sweep_partition, run_sweep,
    run_sweep_partition, sweep_fingerprint, DynamicSweepConfig, PartitionPlan, PartitionRun,
    SweepConfig,
};
use pombm::{registry, PipelineConfig, DEFAULT_SCENARIO};
use proptest::prelude::*;

fn scenario_names() -> Vec<&'static str> {
    registry().scenarios().iter().map(|s| s.name()).collect()
}

fn static_config(scenarios: Vec<String>, seed: u64) -> SweepConfig {
    SweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["greedy".into()],
        scenarios,
        sizes: vec![6, 8],
        epsilons: vec![0.5],
        repetitions: 1,
        shards: 1,
        timings: false,
        base: PipelineConfig {
            grid_side: 16,
            seed,
            ..PipelineConfig::default()
        },
    }
}

fn dynamic_config(scenarios: Vec<String>, seed: u64) -> DynamicSweepConfig {
    DynamicSweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["hst-greedy".into()],
        scenarios,
        shift_plans: vec!["short".into()],
        sizes: vec![8],
        epsilons: vec![0.6],
        shards: 1,
        timings: false,
        ratio: false,
        grid_side: 16,
        seed,
    }
}

proptest! {
    /// Every registered scenario is shard-, thread-, and
    /// partition-invariant: the sweep artifact is a pure function of the
    /// configuration, never of how the job space was fanned out.
    #[test]
    fn every_scenario_is_shard_thread_and_partition_invariant(seed in 0u64..1000) {
        for name in scenario_names() {
            let mut config = static_config(vec![name.to_string()], seed);
            let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
            for shards in [2, 7] {
                config.shards = shards;
                let other = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
                prop_assert_eq!(&full, &other, "scenario {}: shards {}", name, shards);
            }
            config.shards = 1;
            config.base.threads = 3;
            let threaded = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
            prop_assert_eq!(&full, &threaded, "scenario {}: in-cell threads", name);
            config.base.threads = 1;

            let partials: Vec<_> = (1..=2)
                .map(|i| {
                    let run = PartitionRun {
                        plan: PartitionPlan::new(i, 2).unwrap(),
                        ..PartitionRun::default()
                    };
                    run_sweep_partition(&config, &run).unwrap().0
                })
                .collect();
            let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
            prop_assert_eq!(&full, &merged, "scenario {}: partition merge", name);
        }
    }

    /// The dynamic flavour holds the same contract for every scenario.
    #[test]
    fn every_scenario_is_invariant_on_the_dynamic_flavour(seed in 0u64..500) {
        for name in scenario_names() {
            let mut config = dynamic_config(vec![name.to_string()], seed);
            let full = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
            config.shards = 3;
            let other = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
            prop_assert_eq!(&full, &other, "scenario {}: dynamic shards", name);
        }
    }
}

/// An empty axis and an explicit `["uniform"]` are the *same* sweep: the
/// reports match byte for byte and the config fingerprints coincide, so
/// checkpoints and partials written before the scenario axis existed keep
/// merging with runs that spell the default out.
#[test]
fn empty_axis_is_the_uniform_default() {
    let legacy = static_config(Vec::new(), 7);
    let explicit = static_config(vec![DEFAULT_SCENARIO.to_string()], 7);
    assert_eq!(
        serde_json::to_string(&run_sweep(&legacy).unwrap()).unwrap(),
        serde_json::to_string(&run_sweep(&explicit).unwrap()).unwrap(),
    );
    assert_eq!(
        sweep_fingerprint(&legacy).unwrap(),
        sweep_fingerprint(&explicit).unwrap(),
    );
    // A non-default axis is a different grid and must not share the
    // fingerprint namespace (stale checkpoints would resume wrong cells).
    let widened = static_config(vec!["uniform".into(), "normal".into()], 7);
    assert_ne!(
        sweep_fingerprint(&legacy).unwrap(),
        sweep_fingerprint(&widened).unwrap(),
    );

    let legacy = dynamic_config(Vec::new(), 7);
    let explicit = dynamic_config(vec![DEFAULT_SCENARIO.to_string()], 7);
    assert_eq!(
        serde_json::to_string(&run_dynamic_sweep(&legacy).unwrap()).unwrap(),
        serde_json::to_string(&run_dynamic_sweep(&explicit).unwrap()).unwrap(),
    );
    assert_eq!(
        dynamic_sweep_fingerprint(&legacy).unwrap(),
        dynamic_sweep_fingerprint(&explicit).unwrap(),
    );
}

/// A multi-scenario partitioned sweep merges byte-identically to its
/// single-process run — the scenario axis rides the existing job-index
/// space, so `pombm merge` needs no new logic (the PR's acceptance
/// criterion, exercised through the library API on both flavours).
#[test]
fn multi_scenario_partitions_merge_byte_exactly() {
    let all: Vec<String> = scenario_names().iter().map(|s| s.to_string()).collect();
    let config = static_config(all.clone(), 3);
    let full = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
    let partials: Vec<_> = (1..=3)
        .map(|i| {
            let run = PartitionRun {
                plan: PartitionPlan::new(i, 3).unwrap(),
                ..PartitionRun::default()
            };
            run_sweep_partition(&config, &run).unwrap().0
        })
        .collect();
    let merged = serde_json::to_string(&merge_static(&partials).unwrap()).unwrap();
    assert_eq!(full, merged, "static multi-scenario merge drifted");

    let config = dynamic_config(all, 3);
    let full = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
    let partials: Vec<_> = (1..=2)
        .map(|i| {
            let run = PartitionRun {
                plan: PartitionPlan::new(i, 2).unwrap(),
                ..PartitionRun::default()
            };
            run_dynamic_sweep_partition(&config, &run).unwrap().0
        })
        .collect();
    let merged = serde_json::to_string(&merge_dynamic(&partials).unwrap()).unwrap();
    assert_eq!(full, merged, "dynamic multi-scenario merge drifted");
}

/// FNV-1a over the report bytes — the same construction the sweep uses
/// for config fingerprints, reimplemented locally so the golden stands
/// on its own.
fn fnv64(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{hash:016x}")
}

/// One golden output fingerprint per non-default scenario (the default is
/// pinned far more strictly by `ci/golden/mini-sweep.json`). Every number
/// a scenario feeds downstream — worker placement, task placement, demand
/// curve — is load-bearing for reproducibility, so a generator change
/// must show up here as an explicit golden update.
#[test]
fn scenario_sweep_goldens_are_pinned() {
    for (name, expected) in [
        ("normal", "a36de37be9022ba0"),
        ("hotspot", "7321577dd90b4ba4"),
        ("poisson-disk", "cd4a27cb51a7eb9b"),
        ("adversarial-cell", "4d060b99cefff856"),
    ] {
        let config = static_config(vec![name.to_string()], 42);
        let json = serde_json::to_string(&run_sweep(&config).unwrap()).unwrap();
        assert_eq!(
            fnv64(json.as_bytes()),
            expected,
            "scenario `{name}` sweep output drifted; report:\n{json}"
        );
    }
}

/// The timeline half of each scenario is pinned too: dynamic sweep output
/// per scenario, covering `timeline_instance`, `task_times` (hotspot's
/// rush-hour curve included) and the shift-plan derivation.
#[test]
fn scenario_dynamic_goldens_are_pinned() {
    for (name, expected) in [
        ("normal", "1915d5c58843c8d4"),
        ("hotspot", "b837a7b2769d2e86"),
        ("poisson-disk", "3c572ab622b668c6"),
        ("adversarial-cell", "3c2a2969e34e724a"),
    ] {
        let config = dynamic_config(vec![name.to_string()], 42);
        let json = serde_json::to_string(&run_dynamic_sweep(&config).unwrap()).unwrap();
        assert_eq!(
            fnv64(json.as_bytes()),
            expected,
            "scenario `{name}` dynamic output drifted; report:\n{json}"
        );
    }
}
