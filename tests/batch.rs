//! The hot-path parallelism contracts end-to-end:
//!
//! 1. [`ReportMechanism::report_batch`] is bit-identical to the scalar
//!    report loop — output *and* final RNG state — for every registered
//!    mechanism at several thread counts (the overridden parallel paths
//!    included);
//! 2. the generic driver produces bit-identical `RunResult`s for every
//!    `PipelineConfig::threads` value, across all registered specs;
//! 3. the Hungarian `offline-opt` matcher (and the ratio denominator built
//!    on it) is thread-count invariant on instances large enough to take
//!    the blocked parallel scan;
//! 4. sweeps with `--threads`-style in-cell parallelism serialize to the
//!    same bytes as sequential sweeps, and `--timings` adds `wall_ms`
//!    without perturbing the timing-free JSON.

use pombm::algorithm::{Report, ReportMechanism};
use pombm::ratio::{offline_optimum, offline_optimum_with_threads};
use pombm::sweep::{run_sweep, SweepConfig};
use pombm::{registry, run_spec, PipelineConfig, Server};
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_matching::offline::OfflineOptimal;
use pombm_privacy::Epsilon;
use pombm_workload::{synthetic, Instance, SyntheticParams};
use proptest::prelude::*;
use rand::Rng;

fn instance(tasks: usize, workers: usize, seed: u64) -> Instance {
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, &mut seeded_rng(seed, 0))
}

/// The scalar loop every `report_batch` implementation must reproduce.
fn scalar_reports(
    mechanism: &dyn ReportMechanism,
    server: Option<&Server>,
    locations: &[Point],
    rng: &mut rand::rngs::StdRng,
) -> Vec<Report> {
    let mut reporter = mechanism
        .reporter(Epsilon::new(0.6), server)
        .expect("reporter builds");
    locations.iter().map(|p| reporter.report(p, rng)).collect()
}

#[test]
fn report_batch_is_bit_identical_to_the_scalar_loop_for_every_mechanism() {
    let region = Rect::square(200.0);
    let server = Server::new(region, 16, 5);
    let mut loc_rng = seeded_rng(8, 1);
    let locations: Vec<Point> = (0..600)
        .map(|_| Point::new(loc_rng.gen::<f64>() * 200.0, loc_rng.gen::<f64>() * 200.0))
        .collect();
    for mechanism in registry().mechanisms() {
        let server_opt = mechanism.needs_server().then_some(&server);
        let mut scalar_rng = seeded_rng(13, 2);
        let scalar = scalar_reports(mechanism.as_ref(), server_opt, &locations, &mut scalar_rng);
        for threads in [0usize, 1, 2, 7] {
            let mut rng = seeded_rng(13, 2);
            let batched = mechanism
                .report_batch(Epsilon::new(0.6), server_opt, &locations, &mut rng, threads)
                .unwrap_or_else(|e| panic!("{}: {e}", mechanism.name()));
            assert_eq!(
                batched,
                scalar,
                "{} at {threads} threads: reports drifted",
                mechanism.name()
            );
            assert_eq!(
                rng,
                scalar_rng,
                "{} at {threads} threads: stream state drifted",
                mechanism.name()
            );
        }
    }
}

#[test]
fn run_spec_is_thread_count_invariant_for_every_registered_spec() {
    let inst = instance(700, 900, 17);
    for spec in registry().specs() {
        let run_at = |threads: usize| {
            let config = PipelineConfig {
                grid_side: 16,
                threads,
                ..PipelineConfig::default()
            };
            run_spec(spec, &inst, &config, 1).unwrap_or_else(|e| panic!("{}: {e}", spec.name()))
        };
        let baseline = run_at(1);
        for threads in [0usize, 2, 7] {
            let r = run_at(threads);
            assert_eq!(
                r.matching.pairs,
                baseline.matching.pairs,
                "{}: threads = {threads} changed the matching",
                spec.name()
            );
            assert_eq!(
                r.metrics.total_distance,
                baseline.metrics.total_distance,
                "{}: threads = {threads} changed the distance",
                spec.name()
            );
        }
    }
}

#[test]
fn offline_optimum_is_thread_count_invariant_past_the_parallel_cutoff() {
    // 1200 × 1200 exceeds the solver's sequential-fallback cutoff, so the
    // blocked parallel scan path really runs.
    let inst = instance(1200, 1200, 23);
    let baseline = offline_optimum(&inst).expect("measurable");
    for threads in [0usize, 2, 3, 7] {
        let par = offline_optimum_with_threads(&inst, threads).expect("measurable");
        assert_eq!(
            par.to_bits(),
            baseline.to_bits(),
            "threads = {threads} changed the OPT denominator"
        );
    }
}

proptest! {
    /// Random rectangular Euclidean instances, arbitrary thread counts:
    /// the parallel Hungarian returns the reference solver's exact pairs
    /// and a bit-identical total cost.
    #[test]
    fn hungarian_threads_match_reference_on_rectangular_instances(
        sizes in (1usize..120, 1usize..120),
        seed in 0u64..10_000,
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 7][threads_idx];
        let (tasks_n, workers_n) = sizes;
        let inst = instance(tasks_n, workers_n, seed);
        let cost = |t: usize, w: usize| inst.tasks[t].dist(&inst.workers[w]);
        let reference = OfflineOptimal::solve_reference(tasks_n, workers_n, cost);
        let parallel = OfflineOptimal::solve_with_threads(tasks_n, workers_n, threads, cost);
        prop_assert_eq!(&parallel.pairs, &reference.pairs);
        let ref_total: f64 = reference.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
        let par_total: f64 = parallel.pairs.iter().map(|&(t, w)| cost(t, w)).sum();
        prop_assert_eq!(ref_total.to_bits(), par_total.to_bits());
    }

    /// Tie-heavy integer costs: the canonical (cost, lowest-column) rule
    /// keeps every path identical to the reference solver.
    #[test]
    fn hungarian_threads_match_reference_on_tie_heavy_costs(
        sizes in (1usize..40, 1usize..40),
        seed in 0u64..10_000,
        threads_idx in 0usize..3,
    ) {
        let threads = [1usize, 2, 7][threads_idx];
        let (rows, cols) = sizes;
        let mut rng = seeded_rng(seed, 0x71E5);
        let costs: Vec<f64> = (0..rows * cols)
            .map(|_| rng.gen_range(0..3u32) as f64)
            .collect();
        let cost = |t: usize, w: usize| costs[t * cols + w];
        let reference = OfflineOptimal::solve_reference(rows, cols, cost);
        let parallel = OfflineOptimal::solve_with_threads(rows, cols, threads, cost);
        prop_assert_eq!(&parallel.pairs, &reference.pairs);
    }
}

#[test]
fn sweep_json_is_identical_across_in_cell_thread_counts() {
    let config = |threads: usize| SweepConfig {
        mechanisms: vec!["identity".into(), "laplace".into(), "hst".into()],
        matchers: vec!["offline-opt".into(), "greedy".into()],
        scenarios: Vec::new(),
        sizes: vec![16],
        epsilons: vec![0.6],
        repetitions: 2,
        shards: 2,
        timings: false,
        base: PipelineConfig {
            grid_side: 16,
            seed: 11,
            threads,
            ..PipelineConfig::default()
        },
    };
    let baseline = serde_json::to_string(&run_sweep(&config(1)).unwrap()).unwrap();
    for threads in [0usize, 2, 7] {
        let parallel = serde_json::to_string(&run_sweep(&config(threads)).unwrap()).unwrap();
        assert_eq!(baseline, parallel, "threads = {threads} changed the sweep");
    }
}

#[test]
fn timings_add_wall_ms_without_perturbing_the_deterministic_json() {
    let config = |timings: bool| SweepConfig {
        mechanisms: vec!["identity".into()],
        matchers: vec!["offline-opt".into(), "greedy".into()],
        scenarios: Vec::new(),
        sizes: vec![10],
        epsilons: vec![0.6],
        repetitions: 2,
        shards: 1,
        timings,
        base: PipelineConfig {
            grid_side: 16,
            seed: 3,
            ..PipelineConfig::default()
        },
    };
    let plain = run_sweep(&config(false)).unwrap();
    assert!(plain.cells.iter().all(|c| c.wall_ms.is_none()));
    let plain_json = serde_json::to_string(&plain).unwrap();
    assert!(
        !plain_json.contains("wall_ms"),
        "timings off must omit the column entirely: {plain_json}"
    );

    let timed = run_sweep(&config(true)).unwrap();
    assert!(timed
        .cells
        .iter()
        .all(|c| c.wall_ms.is_some_and(|ms| ms >= 0.0)));
    let timed_json = serde_json::to_string(&timed).unwrap();
    assert!(timed_json.contains("wall_ms"), "{timed_json}");

    // Stripping wall_ms from the timed report reproduces the plain JSON:
    // the timing column is purely additive.
    let mut stripped = timed.clone();
    for cell in &mut stripped.cells {
        cell.wall_ms = None;
    }
    assert_eq!(serde_json::to_string(&stripped).unwrap(), plain_json);
}
