//! Integration tests of the matching layer over real HSTs (not just raw
//! code contexts): HST-greedy vs the offline optimum, engine equivalence at
//! scale, and the greedy's competitive behaviour on the tree metric.

use pombm_geom::{seeded_rng, Grid, Point, Rect};
use pombm_hst::{Hst, LeafCode};
use pombm_matching::offline::OfflineOptimal;
use pombm_matching::{HstGreedy, HstGreedyEngine, Matching};
use rand::Rng;

fn grid_hst(side: usize, seed: u64) -> Hst {
    let grid = Grid::square(Rect::square(200.0), side);
    let mut rng = seeded_rng(seed, 0);
    Hst::build(&grid.to_point_set(), &mut rng)
}

/// HST-greedy on exact (unobfuscated) leaves never does better than the
/// offline optimum measured in tree distance, and stays within the
/// O(log N log² k) ballpark on random instances.
#[test]
fn hst_greedy_vs_offline_optimum_in_tree_metric() {
    let hst = grid_hst(8, 1);
    let mut rng = seeded_rng(2, 1);
    let n = 60;
    let workers: Vec<LeafCode> = (0..n)
        .map(|_| hst.leaf_of(rng.gen_range(0..hst.num_points())))
        .collect();
    let tasks: Vec<LeafCode> = (0..n)
        .map(|_| hst.leaf_of(rng.gen_range(0..hst.num_points())))
        .collect();

    let mut greedy = HstGreedy::new(hst.ctx(), workers.clone(), HstGreedyEngine::Scan);
    let mut greedy_total = 0.0;
    for &t in &tasks {
        let w = greedy.assign(t).unwrap();
        greedy_total += hst.tree_dist(t, workers[w]);
    }

    let opt = OfflineOptimal::solve(tasks.len(), workers.len(), |t, w| {
        hst.tree_dist(tasks[t], workers[w])
    });
    let opt_total: f64 = opt
        .pairs
        .iter()
        .map(|&(t, w)| hst.tree_dist(tasks[t], workers[w]))
        .sum();

    assert!(greedy_total >= opt_total - 1e-9, "greedy beats OPT?");
    // Meyerson et al. give O(log³ k) in expectation for HST greedy; a fixed
    // instance can deviate, so use a loose sanity multiple.
    assert!(
        greedy_total <= opt_total.max(1.0) * 50.0,
        "greedy {greedy_total} vs opt {opt_total}: unreasonable gap"
    );
}

/// Engine equivalence on a real tree at moderate scale.
#[test]
fn engines_agree_on_real_tree() {
    let hst = grid_hst(16, 3);
    let mut rng = seeded_rng(4, 2);
    let workers: Vec<LeafCode> = (0..800)
        .map(|_| LeafCode(rng.gen_range(0..hst.num_leaves())))
        .collect();
    let tasks: Vec<LeafCode> = (0..800)
        .map(|_| LeafCode(rng.gen_range(0..hst.num_leaves())))
        .collect();
    let mut scan = HstGreedy::new(hst.ctx(), workers.clone(), HstGreedyEngine::Scan);
    let mut indexed = HstGreedy::new(hst.ctx(), workers, HstGreedyEngine::Indexed);
    for &t in &tasks {
        assert_eq!(scan.assign(t), indexed.assign(t));
    }
}

/// Tree distances dominate Euclidean distances (the HST embedding property),
/// so a matching's tree cost upper-bounds its Euclidean cost on the
/// predefined points.
#[test]
fn tree_cost_dominates_euclidean_cost() {
    let hst = grid_hst(8, 5);
    let points = hst.points().clone();
    let mut rng = seeded_rng(6, 3);
    let task_ids: Vec<usize> = (0..40).map(|_| rng.gen_range(0..points.len())).collect();
    let worker_ids: Vec<usize> = (0..40).map(|_| rng.gen_range(0..points.len())).collect();

    let mut greedy = HstGreedy::new(
        hst.ctx(),
        worker_ids.iter().map(|&w| hst.leaf_of(w)).collect(),
        HstGreedyEngine::Scan,
    );
    let mut matching = Matching::new();
    for (i, &t) in task_ids.iter().enumerate() {
        let w = greedy.assign(hst.leaf_of(t)).unwrap();
        matching.pairs.push((i, w));
    }
    for &(t, w) in &matching.pairs {
        let de = points.point(task_ids[t]).dist(&points.point(worker_ids[w]));
        let dt = hst.tree_dist(hst.leaf_of(task_ids[t]), hst.leaf_of(worker_ids[w]));
        assert!(dt + 1e-9 >= de, "tree {dt} < euclid {de}");
    }
}

/// Greedy in the Euclidean plane vs greedy on the tree built over the same
/// points: both produce perfect matchings of the same size, and on exact
/// data their total distances are within a log-factor of each other.
#[test]
fn euclid_and_tree_greedy_are_comparable_on_exact_data() {
    let hst = grid_hst(8, 7);
    let points = hst.points().clone();
    let mut rng = seeded_rng(8, 4);
    let tasks: Vec<Point> = (0..50)
        .map(|_| points.point(rng.gen_range(0..points.len())))
        .collect();
    let workers: Vec<Point> = (0..80)
        .map(|_| points.point(rng.gen_range(0..points.len())))
        .collect();

    let mut euclid = pombm_matching::EuclideanGreedy::new(workers.clone());
    let mut euclid_total = 0.0;
    for t in &tasks {
        let w = euclid.assign(t).unwrap();
        euclid_total += t.dist(&workers[w]);
    }

    let mut tree = HstGreedy::new(
        hst.ctx(),
        workers.iter().map(|w| hst.snap(w)).collect(),
        HstGreedyEngine::Scan,
    );
    let mut tree_total = 0.0;
    for t in &tasks {
        let w = tree.assign(hst.snap(t)).unwrap();
        tree_total += t.dist(&workers[w]);
    }

    assert!(euclid_total > 0.0 || tree_total >= 0.0);
    // The tree embedding distorts by O(log N); allow a wide but finite band.
    assert!(
        tree_total <= euclid_total.max(1.0) * 30.0,
        "tree-greedy total {tree_total} vs euclid {euclid_total}"
    );
}

/// Hungarian correctness on the tree metric: never worse than any greedy,
/// for several arrival orders.
#[test]
fn offline_optimum_lower_bounds_greedy_over_orders() {
    let hst = grid_hst(6, 9);
    let mut rng = seeded_rng(10, 5);
    let workers: Vec<LeafCode> = (0..30)
        .map(|_| LeafCode(rng.gen_range(0..hst.num_leaves())))
        .collect();
    let mut tasks: Vec<LeafCode> = (0..30)
        .map(|_| LeafCode(rng.gen_range(0..hst.num_leaves())))
        .collect();

    let opt = OfflineOptimal::solve(tasks.len(), workers.len(), |t, w| {
        hst.tree_dist(tasks[t], workers[w])
    });
    let opt_total: f64 = opt
        .pairs
        .iter()
        .map(|&(t, w)| hst.tree_dist(tasks[t], workers[w]))
        .sum();

    for _ in 0..5 {
        use rand::seq::SliceRandom;
        tasks.shuffle(&mut rng);
        let mut greedy = HstGreedy::new(hst.ctx(), workers.clone(), HstGreedyEngine::Indexed);
        let mut total = 0.0;
        for &t in &tasks {
            let w = greedy.assign(t).unwrap();
            total += hst.tree_dist(t, workers[w]);
        }
        assert!(total >= opt_total - 1e-9);
    }
}
