//! Integration and property tests for the extension modules: the
//! exponential mechanism, alias tables, the randomized/chain/capacitated
//! matchers, the extended pipeline variants, and the epoch simulator.

use pombm::{run, run_epochs, Algorithm, EpochConfig, PipelineConfig};
use pombm_geom::{seeded_rng, Grid, Rect};
use pombm_hst::{CodeContext, LeafCode};
use pombm_matching::{
    CapacitatedGreedy, ChainMatcher, HstGreedy, HstGreedyEngine, RandomizedGreedy,
};
use pombm_privacy::{AliasTable, Epsilon, ExponentialMechanism};
use pombm_workload::{synthetic, SyntheticParams};
use proptest::prelude::*;

fn small_instance(tasks: usize, workers: usize, seed: u64) -> pombm_workload::Instance {
    let params = SyntheticParams {
        num_tasks: tasks,
        num_workers: workers,
        ..SyntheticParams::default()
    };
    synthetic::generate(&params, &mut seeded_rng(seed, 0))
}

// ---------------------------------------------------------------------------
// Cross-crate pipeline behaviour of the extended algorithms.
// ---------------------------------------------------------------------------

#[test]
fn mechanism_ablation_ordering_holds_at_strict_epsilon() {
    // At ε = 0.2 the tree-aware mechanism must beat the exponential
    // mechanism under the same matcher, and both must beat random: this is
    // the ordering the ablatemech experiment reports.
    let instance = small_instance(150, 250, 1);
    let reps = 4;
    let avg = |algo: Algorithm| -> f64 {
        (0..reps)
            .map(|rep| {
                let config = PipelineConfig {
                    epsilon: 0.2,
                    ..PipelineConfig::default()
                };
                run(algo, &instance, &config, rep).metrics.total_distance
            })
            .sum::<f64>()
            / reps as f64
    };
    let tbf = avg(Algorithm::Tbf);
    let exp = avg(Algorithm::ExpHg);
    let floor = avg(Algorithm::RandomFloor);
    assert!(
        tbf < exp,
        "TBF ({tbf}) should beat Exp-HG ({exp}) at eps=0.2"
    );
    assert!(exp < floor, "Exp-HG ({exp}) should beat random ({floor})");
}

#[test]
fn extended_algorithms_respect_k_min_n_m() {
    // More tasks than workers: matching size is min(n, m) for every
    // distance-minimizing variant.
    let instance = small_instance(80, 30, 2);
    for algo in [
        Algorithm::ExpHg,
        Algorithm::TbfRand,
        Algorithm::TbfChain,
        Algorithm::RandomFloor,
    ] {
        let r = run(algo, &instance, &PipelineConfig::default(), 0);
        assert_eq!(r.matching.size(), 30, "{algo}");
        assert!(r.matching.is_valid(), "{algo}");
    }
}

#[test]
fn epoch_simulation_distance_degrades_after_budget_exhaustion() {
    let config = EpochConfig {
        num_epochs: 8,
        lifetime_epsilon: 1.2, // two fresh reports at ε = 0.6
        epoch_epsilon: 0.6,
        worker_drift: 12.0,
        tasks_per_epoch: 120,
        grid_side: 16,
        ..EpochConfig::default()
    };
    let report = run_epochs(250, &config);
    // Average of the fresh-report epochs vs the stale tail.
    let fresh_avg: f64 = report.per_epoch[..2]
        .iter()
        .map(|m| m.total_distance)
        .sum::<f64>()
        / 2.0;
    let stale_avg: f64 = report.per_epoch[5..]
        .iter()
        .map(|m| m.total_distance)
        .sum::<f64>()
        / (report.per_epoch.len() - 5) as f64;
    assert!(
        stale_avg > fresh_avg,
        "stale epochs ({stale_avg}) should cost more than fresh ones ({fresh_avg})"
    );
}

#[test]
fn exponential_mechanism_audit_on_grid() {
    // Exact ε-Geo-I audit over a small grid for several budgets.
    let points = Grid::square(Rect::square(100.0), 4).to_point_set();
    for eps in [0.1, 0.6, 2.0] {
        ExponentialMechanism::new(points.clone(), Epsilon::new(eps))
            .audit_geo_i(1e-9)
            .unwrap_or_else(|e| panic!("eps = {eps}: {e}"));
    }
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

fn arb_ctx() -> impl Strategy<Value = CodeContext> {
    (2u32..=4, 2u32..=6).prop_map(|(c, d)| CodeContext::new(c, d))
}

proptest! {
    /// Alias-table PMF equals the normalized weights and sampling stays in
    /// support, for arbitrary weight vectors.
    #[test]
    fn alias_table_pmf_matches_weights(
        weights in proptest::collection::vec(0.0f64..1e6, 1..64),
        seed in 0u64..10_000,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!((table.probability(i) - w / total).abs() < 1e-9);
        }
        let mut rng = seeded_rng(seed, 0);
        for _ in 0..50 {
            let s = table.sample(&mut rng);
            prop_assert!(s < weights.len());
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {}", s);
        }
    }

    /// The randomized greedy matcher always assigns a tree-nearest
    /// available worker and never reuses one.
    #[test]
    fn randomized_greedy_invariants(
        ctx in arb_ctx(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let mut rng = seeded_rng(seed, 1);
        use rand::Rng as _;
        let workers: Vec<LeafCode> =
            (0..n).map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves()))).collect();
        let mut m = RandomizedGreedy::new(ctx, workers.clone());
        let mut available = vec![true; n];
        for _ in 0..n {
            let t = LeafCode(rng.gen_range(0..ctx.num_leaves()));
            let w = m.assign(t, &mut rng).expect("pool non-empty");
            prop_assert!(available[w]);
            let best = workers.iter().enumerate()
                .filter(|&(i, _)| available[i])
                .map(|(_, &x)| ctx.tree_dist_units(t, x))
                .min().unwrap();
            prop_assert_eq!(ctx.tree_dist_units(t, workers[w]), best);
            available[w] = false;
        }
        prop_assert_eq!(m.remaining(), 0);
    }

    /// The chain matcher matches min(n, m) tasks, never reuses a worker,
    /// and its hop counts stay below the pool size.
    #[test]
    fn chain_matcher_invariants(
        ctx in arb_ctx(),
        seed in 0u64..10_000,
        n in 1usize..30,
        m in 1usize..30,
    ) {
        let mut rng = seeded_rng(seed, 2);
        use rand::Rng as _;
        let workers: Vec<LeafCode> =
            (0..n).map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves()))).collect();
        let mut matcher = ChainMatcher::new(ctx, workers);
        let mut used = std::collections::HashSet::new();
        let mut matched = 0usize;
        for _ in 0..m {
            let t = LeafCode(rng.gen_range(0..ctx.num_leaves()));
            match matcher.assign(t) {
                Some(out) => {
                    prop_assert!(used.insert(out.worker));
                    prop_assert!(out.hops < n);
                    matched += 1;
                }
                None => break,
            }
        }
        prop_assert_eq!(matched, n.min(m));
    }

    /// Capacitated greedy with capacity 1 is exactly plain HST-greedy
    /// (indexed engine) on any input.
    #[test]
    fn capacity_one_equals_greedy(
        ctx in arb_ctx(),
        seed in 0u64..10_000,
        n in 1usize..40,
    ) {
        let mut rng = seeded_rng(seed, 3);
        use rand::Rng as _;
        let workers: Vec<LeafCode> =
            (0..n).map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves()))).collect();
        let mut cap = CapacitatedGreedy::uniform(ctx, workers.clone(), 1);
        let mut plain = HstGreedy::new(ctx, workers, HstGreedyEngine::Indexed);
        for _ in 0..n + 2 {
            let t = LeafCode(rng.gen_range(0..ctx.num_leaves()));
            prop_assert_eq!(cap.assign(t), plain.assign(t));
        }
    }

    /// Total capacity is conserved: with total slots S, exactly S tasks
    /// are assigned and the rest rejected.
    #[test]
    fn capacity_slots_conserved(
        ctx in arb_ctx(),
        seed in 0u64..10_000,
        caps in proptest::collection::vec(0u32..4, 1..20),
    ) {
        let mut rng = seeded_rng(seed, 4);
        use rand::Rng as _;
        let workers: Vec<LeafCode> = (0..caps.len())
            .map(|_| LeafCode(rng.gen_range(0..ctx.num_leaves()))).collect();
        let slots: u32 = caps.iter().sum();
        let mut m = CapacitatedGreedy::new(ctx, workers, caps);
        let mut assigned = 0u32;
        for _ in 0..slots + 5 {
            let t = LeafCode(rng.gen_range(0..ctx.num_leaves()));
            if m.assign(t).is_some() {
                assigned += 1;
            }
        }
        prop_assert_eq!(assigned, slots);
        prop_assert_eq!(m.remaining_slots(), 0);
    }

    /// Exponential-mechanism probabilities are monotone in distance: a
    /// strictly closer candidate never has lower probability.
    #[test]
    fn exponential_monotone_in_distance(seed in 0u64..1_000) {
        let points = Grid::square(Rect::square(50.0), 3).to_point_set();
        let mech = ExponentialMechanism::new(points.clone(), Epsilon::new(0.8));
        let mut rng = seeded_rng(seed, 5);
        use rand::Rng as _;
        let x = rng.gen_range(0..points.len());
        for a in 0..points.len() {
            for b in 0..points.len() {
                if points.dist(x, a) < points.dist(x, b) {
                    prop_assert!(
                        mech.probability(x, a) >= mech.probability(x, b),
                        "closer candidate {} got lower probability than {}", a, b
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quadtree construction properties.
// ---------------------------------------------------------------------------

proptest! {
    /// For arbitrary distinct point sets, the quadtree is structurally
    /// valid, dominates the Euclidean metric, and round-trips through the
    /// wire format.
    #[test]
    fn quadtree_valid_dominating_and_encodable(
        coords in proptest::collection::hash_set((0u32..200, 0u32..200), 2..40),
    ) {
        use pombm_geom::{Point, PointSet};
        use pombm_hst::{quadtree, wire, Hst};
        let points = PointSet::new(
            coords.iter().map(|&(x, y)| Point::new(x as f64, y as f64)).collect(),
        );
        let raw = quadtree::build_quadtree(&points);
        prop_assert!(raw.validate(points.len()).is_ok());
        let hst = Hst::from_quadtree(&points);
        prop_assert!(hst.validate_domination().is_ok());
        // Wire round-trip preserves the published view.
        let encoded = wire::encode(&hst);
        let published = wire::decode(encoded).expect("decode what we encoded");
        prop_assert_eq!(published.points.len(), points.len());
        for p in 0..points.len() {
            prop_assert_eq!(published.leaf_codes[p], hst.leaf_of(p));
        }
    }

    /// FRT and quadtree trees agree on the *identity* of leaves (every
    /// point gets exactly one leaf) even though distances differ.
    #[test]
    fn constructions_agree_on_leaf_bijection(seed in 0u64..500) {
        use pombm_geom::{Grid, Rect};
        use pombm_hst::Hst;
        let points = Grid::square(Rect::square(64.0), 4).to_point_set();
        let frt = Hst::build(&points, &mut seeded_rng(seed, 0));
        let quad = Hst::from_quadtree(&points);
        for p in 0..points.len() {
            prop_assert_eq!(frt.point_of(frt.leaf_of(p)), Some(p));
            prop_assert_eq!(quad.point_of(quad.leaf_of(p)), Some(p));
        }
    }
}
