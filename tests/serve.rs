//! Correctness harness for `pombm serve` (the resident micro-batched
//! matching service) and the batched pool operations it drives:
//!
//! 1. frame protocol — encode/decode roundtrips and typed decode errors
//!    for every corruption shape (truncation at each byte, unknown
//!    opcode, length/opcode mismatch, empty payload);
//! 2. determinism contract — the assignment sequence is a pure function
//!    of `(seed, plan, batch_interval)`: identical across QPS settings
//!    and thread counts, pinned by golden fingerprints, and sensitive to
//!    Δt (the window schedule is part of the artifact's identity);
//! 3. batched pools — proptest that `insert_batch` on every registered
//!    dynamic matcher is observation-equivalent to the same sequence of
//!    single inserts (assignments, availability, tie-stream draws) at
//!    batch sizes {1, 2, 7, 64}, and that `assign_batch` is the
//!    sequential drain;
//! 4. report shape — JSON field names pinned, `latency` absent (not
//!    `null`) without `--timings`.

use bytes::{Buf, Bytes};
use pombm::serve::assignment_fingerprint;
use pombm::{
    registry, run_serve, serve_frames, PipelineError, Report, ServeConfig, ServeRequest, Server,
};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};
use proptest::prelude::*;
use rand::Rng;

fn config(seed: u64) -> ServeConfig {
    ServeConfig {
        num_tasks: 120,
        num_workers: 90,
        seed,
        ..ServeConfig::default()
    }
}

// --- frame protocol ----------------------------------------------------

#[test]
fn frames_roundtrip() {
    let requests = [
        ServeRequest::CheckIn {
            worker: 42,
            at: 17.25,
            x: -3.5,
            y: 1e9,
        },
        ServeRequest::CheckOut {
            worker: u64::MAX,
            at: 0.0,
        },
        ServeRequest::Task {
            task: 7,
            at: 999.875,
            x: 0.1,
            y: -0.1,
        },
        ServeRequest::Shutdown,
    ];
    for request in requests {
        let mut frame = request.encode();
        assert_eq!(ServeRequest::decode(&mut frame).unwrap(), request);
        assert_eq!(frame.remaining(), 0, "decode consumes the whole frame");
    }
    // Frames are self-delimiting: a stream of concatenated frames decodes
    // request by request.
    let mut stream = Vec::new();
    for request in requests {
        stream.extend_from_slice(&request.encode());
    }
    let mut stream = Bytes::from(stream);
    for request in requests {
        assert_eq!(ServeRequest::decode(&mut stream).unwrap(), request);
    }
    assert_eq!(stream.remaining(), 0);
}

#[test]
fn corrupt_frames_are_typed_errors() {
    let whole = ServeRequest::CheckIn {
        worker: 1,
        at: 2.0,
        x: 3.0,
        y: 4.0,
    }
    .encode();
    // Every possible truncation point, including an empty buffer.
    for cut in 0..whole.len() {
        let mut frame = whole.slice(..cut);
        assert!(
            matches!(
                ServeRequest::decode(&mut frame),
                Err(PipelineError::Transport { .. })
            ),
            "cut at {cut} must be a typed transport error"
        );
    }
    // Unknown opcode.
    let mut bad = whole.to_vec();
    bad[4] = 0x7F;
    assert!(matches!(
        ServeRequest::decode(&mut Bytes::from(bad)),
        Err(PipelineError::Transport { .. })
    ));
    // Length/opcode mismatch: a CHECK_OUT length prefix on a CHECK_IN body.
    let mut bad = whole.to_vec();
    bad[..4].copy_from_slice(&17u32.to_be_bytes());
    assert!(matches!(
        ServeRequest::decode(&mut Bytes::from(bad)),
        Err(PipelineError::Transport { .. })
    ));
    // Zero-length payload: a frame needs at least an opcode.
    assert!(matches!(
        ServeRequest::decode(&mut Bytes::from(0u32.to_be_bytes().to_vec())),
        Err(PipelineError::Transport { .. })
    ));
    // Transport errors render with the serve prefix.
    let message = format!(
        "{}",
        ServeRequest::decode(&mut Bytes::default()).unwrap_err()
    );
    assert!(message.starts_with("serve transport: "), "{message}");
}

// --- determinism contract ----------------------------------------------

/// QPS paces wall-clock delivery, never assignments: a throttled replay
/// is byte-identical (assignments *and* report JSON) to an unthrottled
/// one.
#[test]
fn qps_never_affects_assignments() {
    let unthrottled = run_serve(&config(7)).unwrap();
    let throttled = run_serve(&ServeConfig {
        qps: 4000.0,
        ..config(7)
    })
    .unwrap();
    assert_eq!(unthrottled.assignments, throttled.assignments);
    assert_eq!(
        serde_json::to_string(&unthrottled.report).unwrap(),
        serde_json::to_string(&throttled.report).unwrap()
    );
}

/// `threads` trades wall-clock for cores inside the per-window
/// `report_batch` calls — never results.
#[test]
fn threads_never_affect_assignments() {
    let scalar = run_serve(&ServeConfig {
        threads: 1,
        ..config(13)
    })
    .unwrap();
    let auto = run_serve(&ServeConfig {
        threads: 0,
        ..config(13)
    })
    .unwrap();
    assert_eq!(scalar.assignments, auto.assignments);
    assert_eq!(
        serde_json::to_string(&scalar.report).unwrap(),
        serde_json::to_string(&auto.report).unwrap()
    );
}

/// Δt is part of the artifact's identity: regrouping the same timeline
/// into different windows changes the obfuscation draw schedule, so the
/// fingerprints must differ (if they ever collide, the window schedule
/// has silently stopped feeding the RNG streams).
#[test]
fn batch_interval_is_part_of_the_identity() {
    let fine = run_serve(&ServeConfig {
        batch_interval: 1.0,
        ..config(7)
    })
    .unwrap();
    let coarse = run_serve(&ServeConfig {
        batch_interval: 50.0,
        ..config(7)
    })
    .unwrap();
    assert_ne!(
        fine.report.assignment_fingerprint,
        coarse.report.assignment_fingerprint
    );
    // Same timeline either way: every task drains exactly once.
    assert_eq!(fine.assignments.len(), coarse.assignments.len());
    assert!(coarse.report.batches < fine.report.batches);
}

/// Golden fingerprints, one per (mechanism, matcher, plan, Δt) spread —
/// any change to the serve RNG schedule, the window phases, the pool
/// batch ops or the timeline builder shows up here. Recorded from the
/// first build of the serve engine.
#[test]
fn golden_serve_fingerprints() {
    const GOLDEN: &[(&str, &str, &str, f64, u64, &str)] = &[
        ("hst", "hst-greedy", "short", 5.0, 7, "0d19dffdf87154b3"),
        ("laplace", "kd-rebuild", "long", 2.5, 11, "d081d332bb24889e"),
        ("blind", "random", "always-on", 10.0, 3, "c8d3e8cbeacb255e"),
        (
            "identity",
            "hst-greedy",
            "short",
            0.5,
            7,
            "3d767fe963d7016b",
        ),
    ];
    for &(mechanism, matcher, plan, batch_interval, seed, expected) in GOLDEN {
        let outcome = run_serve(&ServeConfig {
            mechanism: mechanism.into(),
            matcher: matcher.into(),
            plan: plan.into(),
            batch_interval,
            ..config(seed)
        })
        .unwrap();
        assert_eq!(
            outcome.report.assignment_fingerprint, expected,
            "{mechanism}+{matcher}+{plan} Δt={batch_interval} seed={seed}"
        );
        // The published fingerprint is the digest of the raw sequence.
        assert_eq!(
            assignment_fingerprint(&outcome.assignments),
            outcome.report.assignment_fingerprint
        );
        // Every generated task is accounted for: assigned or dropped.
        assert_eq!(
            outcome.report.assigned + outcome.report.dropped,
            outcome.assignments.len()
        );
    }
}

/// `max_requests` bounds the generator (the service drains the buffered
/// tail on hangup), and the bounded prefix replays deterministically.
#[test]
fn bounded_replay_is_deterministic() {
    let bounded = run_serve(&ServeConfig {
        max_requests: Some(100),
        ..config(7)
    })
    .unwrap();
    assert_eq!(bounded.report.requests, 100);
    let again = run_serve(&ServeConfig {
        max_requests: Some(100),
        ..config(7)
    })
    .unwrap();
    assert_eq!(bounded.assignments, again.assignments);
    let full = run_serve(&config(7)).unwrap();
    assert!(full.report.requests > 100);
}

#[test]
fn degenerate_configs_are_rejected() {
    for batch_interval in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            run_serve(&ServeConfig {
                batch_interval,
                ..config(0)
            }),
            Err(PipelineError::InvalidConfig {
                field: "batch-interval",
                ..
            })
        ));
    }
    for qps in [-1.0, f64::NAN, f64::INFINITY] {
        assert!(matches!(
            run_serve(&ServeConfig { qps, ..config(0) }),
            Err(PipelineError::InvalidConfig { field: "qps", .. })
        ));
    }
    assert!(matches!(
        run_serve(&ServeConfig {
            mechanism: "bogus".into(),
            ..config(0)
        }),
        Err(PipelineError::UnknownEntry { .. })
    ));
    assert!(matches!(
        run_serve(&ServeConfig {
            matcher: "bogus".into(),
            ..config(0)
        }),
        Err(PipelineError::UnknownEntry { .. })
    ));
}

// --- report shape ------------------------------------------------------

/// The report's JSON field names and their order are a public contract —
/// CI's serve-smoke golden byte-compares against them.
#[test]
fn report_field_names_are_pinned() {
    let outcome = run_serve(&config(1)).unwrap();
    let json = serde_json::to_string(&outcome.report).unwrap();
    let expected_keys = [
        "mechanism",
        "matcher",
        "plan",
        "num_tasks",
        "num_workers",
        "epsilon",
        "seed",
        "batch_interval",
        "requests",
        "batches",
        "assigned",
        "dropped",
        "assignment_rate",
        "drop_rate",
        "total_distance",
        "peak_queue_depth",
        "mean_queue_depth",
        "assignment_fingerprint",
    ];
    for key in expected_keys {
        assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
    }
    assert!(
        !json.contains("latency"),
        "latency must be absent — not null — without --timings"
    );
    assert!(
        !json.contains("faults"),
        "clean runs must omit the faults block entirely, keeping \
         pre-chaos goldens byte-identical"
    );
}

/// `--timings` adds wall-clock percentiles without perturbing any
/// deterministic field.
#[test]
fn timings_add_latency_without_perturbing_the_artifact() {
    let timed = run_serve(&ServeConfig {
        timings: true,
        ..config(7)
    })
    .unwrap();
    let untimed = run_serve(&config(7)).unwrap();
    let latency = timed.report.latency.expect("timings record latency");
    assert!(latency.p50_ms <= latency.p95_ms);
    assert!(latency.p95_ms <= latency.p99_ms);
    assert!(latency.p99_ms <= latency.max_ms);
    assert!(latency.p50_ms >= 0.0);
    assert_eq!(timed.assignments, untimed.assignments);
    assert_eq!(
        timed.report.assignment_fingerprint,
        untimed.report.assignment_fingerprint
    );
}

// --- degraded mode (fault injection & overload) ------------------------

/// Golden fingerprints for *faulted* sessions — chaos is part of the
/// artifact's identity: every corruption, duplicate, warp, shed and
/// retry is a pure function of `(seed, plan, rate)`, so these pins hold
/// across QPS pacing and thread counts exactly like the clean goldens.
/// Recorded from the first build of the fault layer. Note `dup-storm`
/// pins the *clean* `hst+hst-greedy` fingerprint: admission dedup must
/// absorb at-least-once delivery without a trace in the assignments.
#[test]
fn golden_faulted_fingerprints() {
    struct FaultedGolden {
        plan: &'static str,
        rate: f64,
        batch_interval: f64,
        queue_cap: Option<usize>,
        shed_policy: Option<&'static str>,
        expected: &'static str,
    }
    const GOLDEN: &[FaultedGolden] = &[
        FaultedGolden {
            plan: "flaky-wire",
            rate: 0.3,
            batch_interval: 50.0,
            queue_cap: Some(2),
            shed_policy: Some("drop-oldest"),
            expected: "af1e7809bc6e4a72",
        },
        FaultedGolden {
            plan: "burst",
            rate: 0.9,
            batch_interval: 5.0,
            queue_cap: Some(3),
            shed_policy: Some("deadline"),
            expected: "4e624ea36521cb28",
        },
        FaultedGolden {
            plan: "dup-storm",
            rate: 0.5,
            batch_interval: 5.0,
            queue_cap: None,
            shed_policy: None,
            expected: "0d19dffdf87154b3",
        },
    ];
    for golden in GOLDEN {
        let make = |qps: f64, threads: usize| {
            run_serve(&ServeConfig {
                batch_interval: golden.batch_interval,
                fault_plan: Some(golden.plan.into()),
                fault_rate: Some(golden.rate),
                queue_cap: golden.queue_cap,
                shed_policy: golden.shed_policy.map(Into::into),
                qps,
                threads,
                ..config(7)
            })
            .unwrap()
        };
        let outcome = make(0.0, 1);
        assert_eq!(
            outcome.report.assignment_fingerprint, golden.expected,
            "{} rate={} Δt={}",
            golden.plan, golden.rate, golden.batch_interval
        );
        // Chaos must survive pacing and parallelism byte-for-byte.
        let paced = make(4000.0, 0);
        assert_eq!(
            serde_json::to_string(&outcome.report).unwrap(),
            serde_json::to_string(&paced.report).unwrap(),
            "{}: faulted report drifted across qps/threads",
            golden.plan
        );
    }
}

/// The faults block's JSON field names are a public contract — CI's
/// chaos-smoke golden byte-compares against them.
#[test]
fn faulted_report_field_names_are_pinned() {
    let outcome = run_serve(&ServeConfig {
        batch_interval: 50.0,
        fault_plan: Some("flaky-wire".into()),
        fault_rate: Some(0.3),
        queue_cap: Some(2),
        shed_policy: Some("drop-oldest".into()),
        ..config(7)
    })
    .unwrap();
    let json = serde_json::to_string(&outcome.report).unwrap();
    let expected_keys = [
        "faults",
        "plan",
        "rate",
        "queue_cap",
        "shed_policy",
        "injected",
        "corrupt",
        "corrupt_classes",
        "duplicates",
        "submitted",
        "shed",
        "retried",
        "expired",
    ];
    for key in expected_keys {
        assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
    }
    let faults = outcome.report.faults.expect("chaos is configured");
    assert!(faults.corrupt > 0, "rate 0.3 must corrupt something");
    assert!(faults.shed > 0, "cap 2 at Δt=50 must shed something");
}

/// A frame script that dies mid-session — truncated frame followed by
/// hangup, never a Shutdown — still yields a well-formed report: the
/// corruption and the hangup are each counted under their Transport
/// class and every buffered window is drained.
#[test]
fn truncated_stream_still_yields_a_well_formed_report() {
    let mut frames = vec![
        ServeRequest::CheckIn {
            worker: 1,
            at: 0.5,
            x: 10.0,
            y: 10.0,
        }
        .encode(),
        ServeRequest::CheckIn {
            worker: 2,
            at: 0.7,
            x: 900.0,
            y: 900.0,
        }
        .encode(),
        ServeRequest::Task {
            task: 100,
            at: 1.0,
            x: 11.0,
            y: 11.0,
        }
        .encode(),
    ];
    // A frame cut off mid-payload, then the stream simply ends: no
    // Shutdown ever arrives.
    let truncated = ServeRequest::Task {
        task: 101,
        at: 1.5,
        x: 12.0,
        y: 12.0,
    }
    .encode();
    frames.push(truncated.slice(0..10));

    let outcome = serve_frames(&config(7), frames).unwrap();
    let report = &outcome.report;
    assert_eq!(report.assigned, 1, "the intact task must still be served");
    assert_eq!(report.requests, 3, "three frames decoded");
    let faults = report
        .faults
        .as_ref()
        .expect("transport damage forces the block");
    assert_eq!(faults.corrupt, 2, "one truncation + one hangup");
    assert!(
        faults
            .corrupt_classes
            .keys()
            .any(|class| class.contains("shorter than its length prefix")),
        "truncation class recorded: {:?}",
        faults.corrupt_classes
    );
    assert_eq!(
        faults.corrupt_classes.get(pombm::serve::CHANNEL_CLOSED),
        Some(&1),
        "hangup without Shutdown is the typed channel-closed Transport class"
    );
    // The report is still serializable and internally consistent.
    let json = serde_json::to_string(report).unwrap();
    assert!(json.contains("\"faults\":"));
    assert_eq!(report.assigned + report.dropped, outcome.assignments.len());
}

/// The hangup error itself is a typed `Transport` variant with a stable
/// message prefix, so transport failures are matchable, not stringly.
#[test]
fn channel_closed_is_a_typed_transport_error() {
    let error = pombm::serve::channel_closed();
    assert!(matches!(
        error,
        PipelineError::Transport {
            why: pombm::serve::CHANNEL_CLOSED
        }
    ));
    assert_eq!(error.to_string(), "serve transport: channel closed");
}

// --- batched pools (satellite: insert_batch ≡ single inserts) ----------

proptest! {
    /// For every registered dynamic matcher, feeding a worker cohort
    /// through `insert_batch` in chunks of {1, 2, 7, 64} is
    /// observation-equivalent to the same sequence of single inserts:
    /// identical assignments, availability, and tie-stream consumption.
    #[test]
    fn insert_batch_equals_single_inserts(seed in 0u64..400) {
        let params = SyntheticParams {
            num_tasks: 40,
            num_workers: 48,
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(seed, 0xBA7C));
        let server = Server::new(instance.region, 16, seed ^ 0xBA7C);
        for matcher in registry().dynamic_matchers() {
            for &batch_size in &[1usize, 2, 7, 64] {
                let workers: Vec<(u64, Report)> = instance
                    .workers
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i as u64, Report::Planar(p)))
                    .collect();
                let mut batched = matcher.pool(Some(&server)).unwrap();
                for chunk in workers.chunks(batch_size) {
                    batched.insert_batch(chunk.to_vec()).unwrap();
                }
                let mut single = matcher.pool(Some(&server)).unwrap();
                for (id, report) in workers {
                    single.insert(id, report).unwrap();
                }
                prop_assert_eq!(batched.available(), single.available());
                let mut tie_a = seeded_rng(seed, 0x7E1);
                let mut tie_b = seeded_rng(seed, 0x7E1);
                for task in &instance.tasks {
                    let a = batched.assign(Report::Planar(*task), &mut tie_a).unwrap();
                    let b = single.assign(Report::Planar(*task), &mut tie_b).unwrap();
                    prop_assert_eq!(a, b, "matcher {} batch {}", matcher.name(), batch_size);
                    prop_assert_eq!(batched.available(), single.available());
                }
                // Equal tie-stream consumption: the next draw matches.
                prop_assert_eq!(tie_a.gen::<u64>(), tie_b.gen::<u64>());
            }
        }
    }

    /// `assign_batch` is the sequential in-order drain, including tie
    /// draws — the default body *is* the contract.
    #[test]
    fn assign_batch_equals_sequential_assigns(seed in 0u64..400) {
        let params = SyntheticParams {
            num_tasks: 30,
            num_workers: 20, // fewer workers than tasks: drops occur
            ..SyntheticParams::default()
        };
        let instance = synthetic::generate(&params, &mut seeded_rng(seed, 0xBA7D));
        let server = Server::new(instance.region, 16, seed ^ 0xBA7D);
        for matcher in registry().dynamic_matchers() {
            let workers: Vec<(u64, Report)> = instance
                .workers
                .iter()
                .enumerate()
                .map(|(i, &p)| (i as u64, Report::Planar(p)))
                .collect();
            let tasks: Vec<Report> =
                instance.tasks.iter().map(|&p| Report::Planar(p)).collect();
            let mut batched = matcher.pool(Some(&server)).unwrap();
            batched.insert_batch(workers.clone()).unwrap();
            let mut single = matcher.pool(Some(&server)).unwrap();
            single.insert_batch(workers).unwrap();
            let mut tie_a = seeded_rng(seed, 0x7E2);
            let mut tie_b = seeded_rng(seed, 0x7E2);
            let drained = batched.assign_batch(tasks.clone(), &mut tie_a).unwrap();
            let sequential: Vec<Option<u64>> = tasks
                .into_iter()
                .map(|t| single.assign(t, &mut tie_b).unwrap())
                .collect();
            prop_assert_eq!(drained, sequential, "matcher {}", matcher.name());
            prop_assert_eq!(tie_a.gen::<u64>(), tie_b.gen::<u64>());
        }
    }
}
