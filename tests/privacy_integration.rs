//! Integration tests of the privacy layer against the tree substrate:
//! Theorem 1 (Geo-I), Theorem 2 (walk ≡ naive), and the mechanism's
//! distance-distortion window (Lemmas 1-2).

use pombm_geom::{seeded_rng, Grid, Rect};
use pombm_hst::{Hst, LeafCode};
use pombm_privacy::geo_i::audit_hst_mechanism;
use pombm_privacy::{Epsilon, HstMechanism};

/// Theorem 1 on trees built over grids of several sizes and seeds.
#[test]
fn geo_i_holds_across_grid_trees() {
    for (side, region) in [(2usize, 8.0), (3, 9.0)] {
        let grid = Grid::square(Rect::square(region), side);
        for seed in 0..3 {
            let mut rng = seeded_rng(seed, 100);
            let hst = Hst::build(&grid.to_point_set(), &mut rng);
            if hst.num_leaves() > 256 {
                continue; // exact audit infeasible; other seeds cover it
            }
            for eps in [0.1, 0.7] {
                let mech = HstMechanism::new(&hst, Epsilon::new(eps));
                let audit = audit_hst_mechanism(&hst, &mech);
                assert!(
                    audit.holds(1e-9),
                    "side {side} seed {seed} eps {eps}: rate {} > {}",
                    audit.max_loss_rate,
                    audit.claimed_epsilon
                );
            }
        }
    }
}

/// Theorem 2 at integration level: empirical distributions of Alg. 3 match
/// the closed-form Eq. 3 probabilities on a production-shaped tree (not just
/// the worked example).
#[test]
fn random_walk_distribution_on_grid_tree() {
    let grid = Grid::square(Rect::square(60.0), 3);
    let mut rng = seeded_rng(3, 200);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    let mech = HstMechanism::new(&hst, Epsilon::new(0.08));
    let x = hst.leaf_of(4);

    // Aggregate by LCA level (the distribution is uniform within a level, so
    // level counts are a sufficient statistic and need far fewer samples).
    let mut level_counts = vec![0u64; hst.depth() as usize + 1];
    let trials = 60_000;
    let mut sample_rng = seeded_rng(4, 201);
    for _ in 0..trials {
        let z = mech.obfuscate(&hst, x, &mut sample_rng);
        level_counts[hst.lca_level(x, z) as usize] += 1;
    }
    let mut chi2 = 0.0;
    for (level, &obs) in level_counts.iter().enumerate() {
        let p = mech.table().level_probability(level as u32);
        let expected = p * trials as f64;
        if expected > 5.0 {
            chi2 += (obs as f64 - expected).powi(2) / expected;
        } else {
            assert!(
                (obs as f64) < expected + 30.0 + 10.0 * expected,
                "level {level}: {obs} observed vs {expected} expected"
            );
        }
    }
    // Depth+1 categories; allow a generous chi-square bound.
    assert!(chi2 < 40.0, "chi-square {chi2} too large");
}

/// The mechanism's expected displacement shrinks as ε grows (the engine of
/// Lemmas 1-2): E[d_T(x, M(x))] is monotonically non-increasing in ε.
#[test]
fn expected_displacement_decreases_with_epsilon() {
    let grid = Grid::square(Rect::square(200.0), 16);
    let mut rng = seeded_rng(5, 300);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    let x = hst.leaf_of(100);
    let mut prev = f64::INFINITY;
    for eps in [0.05, 0.2, 0.8, 3.2] {
        let mech = HstMechanism::new(&hst, Epsilon::new(eps));
        let mut sample_rng = seeded_rng(6, eps.to_bits());
        let trials = 4000;
        let mean: f64 = (0..trials)
            .map(|_| hst.tree_dist(x, mech.obfuscate(&hst, x, &mut sample_rng)))
            .sum::<f64>()
            / trials as f64;
        assert!(
            mean <= prev * 1.05,
            "eps {eps}: mean displacement {mean} should not exceed previous {prev}"
        );
        prev = mean;
    }
}

/// Every output of the walk is a leaf of the published complete tree, and
/// fake-leaf outputs occur with the frequency the weights predict.
#[test]
fn walk_outputs_cover_fake_leaves() {
    let grid = Grid::square(Rect::square(40.0), 2);
    let mut rng = seeded_rng(7, 400);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    let mech = HstMechanism::new(&hst, Epsilon::new(0.01));
    let x = hst.leaf_of(0);
    let mut fake = 0usize;
    let trials = 5000;
    let mut sample_rng = seeded_rng(8, 401);
    for _ in 0..trials {
        let z = mech.obfuscate(&hst, x, &mut sample_rng);
        assert!(hst.ctx().contains(z));
        if !hst.is_real(z) {
            fake += 1;
        }
    }
    // With eps ~ 0 the distribution is near uniform over c^D leaves, of
    // which only 4 are real; expect mostly fake outputs.
    let expected_fake = 1.0 - 4.0 / hst.num_leaves() as f64;
    let observed = fake as f64 / trials as f64;
    assert!(
        (observed - expected_fake).abs() < 0.05,
        "fake-leaf rate {observed} vs expected {expected_fake}"
    );
}

/// Obfuscating different inputs yields different conditional distributions
/// that still overlap (indistinguishability is about bounded, not zero,
/// difference): the supports coincide.
#[test]
fn supports_coincide_across_inputs() {
    let grid = Grid::square(Rect::square(8.0), 2);
    let mut rng = seeded_rng(9, 500);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    let mech = HstMechanism::new(&hst, Epsilon::new(0.3));
    for a in 0..4 {
        for b in 0..4 {
            for z in 0..hst.num_leaves() {
                let pa = mech.probability(&hst, hst.leaf_of(a), LeafCode(z));
                let pb = mech.probability(&hst, hst.leaf_of(b), LeafCode(z));
                assert_eq!(
                    pa > 0.0,
                    pb > 0.0,
                    "support mismatch at z={z} for inputs {a},{b}"
                );
            }
        }
    }
}
