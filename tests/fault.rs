//! Correctness harness for the deterministic-chaos layer
//! (`pombm::fault` + the serve engine's bounded admission queue):
//!
//! 1. transport totality — proptest that `ServeRequest::decode` is total
//!    over arbitrary byte strings (never panics, every non-frame input is
//!    a typed `Transport` error), including hostile length prefixes up to
//!    `u32::MAX`;
//! 2. shedding invariants — for every policy, the queue never exceeds
//!    `queue_cap`, `submitted == assigned + dropped + shed + expired`,
//!    and the whole report is byte-identical across `--threads 1` vs auto
//!    and `--qps 0` vs 4000 while a fault plan is actively firing;
//! 3. absorption — `none` plans, oversized caps and duplicate storms all
//!    leave the assignment fingerprint identical to the clean run;
//! 4. config validation — every chaos misconfiguration is a typed error.

use bytes::Bytes;
use pombm::{run_serve, PipelineError, ServeConfig, ServeRequest};
use proptest::prelude::*;

fn chaos(seed: u64) -> ServeConfig {
    ServeConfig {
        num_tasks: 120,
        num_workers: 90,
        seed,
        ..ServeConfig::default()
    }
}

// --- transport totality -------------------------------------------------

proptest! {
    /// `decode` over arbitrary bytes: never panics, and anything that is
    /// not a well-formed frame is a typed `Transport` error. A successful
    /// decode must have consumed a canonical frame — re-encoding
    /// reproduces the consumed prefix bit-for-bit.
    #[test]
    fn decode_is_total_over_arbitrary_bytes(
        raw in proptest::collection::vec(0u8..=255, 0..128),
    ) {
        let mut frame = Bytes::from(raw.clone());
        match ServeRequest::decode(&mut frame) {
            Ok(request) => {
                let encoded = request.encode();
                prop_assert!(raw.len() >= encoded.len());
                prop_assert_eq!(&raw[..encoded.len()], &encoded[..]);
            }
            Err(PipelineError::Transport { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("non-transport error: {other}")));
            }
        }
    }

    /// Hostile length prefixes — all the way to `u32::MAX` — never panic
    /// or over-read: a prefix longer than the bytes that follow is the
    /// typed truncation error.
    #[test]
    fn decode_survives_hostile_length_prefixes(
        len in 0u32..=u32::MAX,
        body in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let mut raw = len.to_be_bytes().to_vec();
        raw.extend_from_slice(&body);
        let mut frame = Bytes::from(raw);
        match ServeRequest::decode(&mut frame) {
            Ok(_) => prop_assert!((len as usize) <= body.len()),
            Err(PipelineError::Transport { .. }) => {}
            Err(other) => {
                return Err(TestCaseError::fail(format!("non-transport error: {other}")));
            }
        }
    }
}

#[test]
fn maximal_length_prefix_is_a_typed_truncation() {
    let mut raw = u32::MAX.to_be_bytes().to_vec();
    raw.push(0x01);
    assert!(matches!(
        ServeRequest::decode(&mut Bytes::from(raw)),
        Err(PipelineError::Transport { why }) if why.contains("shorter than its length prefix")
    ));
}

// --- shedding invariants ------------------------------------------------

/// For every policy: the bounded queue never exceeds its cap, every
/// submitted task ends in exactly one terminal state, the retry budget
/// semantics match the policy, and the full report (fault block included)
/// is byte-identical across QPS pacing and thread counts while the
/// `burst` plan compresses arrivals hard enough to force real shedding.
#[test]
fn shedding_invariants_hold_for_every_policy() {
    for policy in ["drop-newest", "drop-oldest", "deadline"] {
        let base = ServeConfig {
            batch_interval: 50.0,
            fault_plan: Some("burst".into()),
            fault_rate: Some(0.9),
            queue_cap: Some(2),
            shed_policy: Some(policy.into()),
            ..chaos(7)
        };
        let outcome = run_serve(&base).unwrap();
        let report = &outcome.report;
        let faults = report.faults.as_ref().expect("chaos is configured");
        assert!(
            report.peak_queue_depth <= 2,
            "{policy}: queue depth {} exceeded the cap",
            report.peak_queue_depth
        );
        assert_eq!(
            faults.submitted,
            report.assigned + report.dropped + faults.shed + faults.expired,
            "{policy}: every submitted task must end assigned, dropped, shed or expired"
        );
        assert!(
            faults.shed + faults.expired > 0,
            "{policy}: the compressed workload must actually overflow cap 2"
        );
        assert!(faults.retried > 0, "{policy}: shed tasks must retry first");
        match policy {
            // Deadline expiry is the only terminal state of that policy...
            "deadline" => assert_eq!(faults.shed, 0, "deadline tasks expire, not shed"),
            // ...and the counting policies never expire anything.
            _ => assert_eq!(faults.expired, 0, "{policy} never expires"),
        }
        assert!(faults.injected > 0, "burst at rate 0.9 must warp arrivals");

        let paced = run_serve(&ServeConfig {
            qps: 4000.0,
            threads: 0,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(
            serde_json::to_string(report).unwrap(),
            serde_json::to_string(&paced.report).unwrap(),
            "{policy}: faulted reports must be byte-identical across qps/threads"
        );
    }
}

/// The three policies are genuinely different schedules: under pressure
/// they must not all collapse to the same assignment sequence.
#[test]
fn policies_produce_distinct_schedules_under_pressure() {
    let fingerprint = |policy: &str| {
        run_serve(&ServeConfig {
            batch_interval: 50.0,
            fault_plan: Some("burst".into()),
            fault_rate: Some(0.9),
            queue_cap: Some(2),
            shed_policy: Some(policy.into()),
            ..chaos(7)
        })
        .unwrap()
        .report
        .assignment_fingerprint
    };
    let newest = fingerprint("drop-newest");
    let oldest = fingerprint("drop-oldest");
    assert_ne!(
        newest, oldest,
        "drop-newest and drop-oldest must shed different tasks"
    );
}

// --- absorption: chaos that must not change the artifact ----------------

#[test]
fn none_plan_and_oversized_cap_do_not_perturb_the_artifact() {
    let clean = run_serve(&chaos(7)).unwrap();
    assert!(clean.report.faults.is_none(), "clean runs skip the block");

    let none = run_serve(&ServeConfig {
        fault_plan: Some("none".into()),
        ..chaos(7)
    })
    .unwrap();
    assert_eq!(
        none.report.assignment_fingerprint,
        clean.report.assignment_fingerprint
    );
    let faults = none.report.faults.expect("configured chaos reports zeros");
    assert_eq!(faults.plan.as_deref(), Some("none"));
    assert_eq!(
        (faults.injected, faults.corrupt, faults.shed, faults.expired),
        (0, 0, 0, 0)
    );
    assert_eq!(faults.submitted, none.report.assigned + none.report.dropped);

    let capped = run_serve(&ServeConfig {
        queue_cap: Some(10_000),
        ..chaos(7)
    })
    .unwrap();
    assert_eq!(
        capped.report.assignment_fingerprint, clean.report.assignment_fingerprint,
        "a cap that never binds must change nothing"
    );
    let faults = capped.report.faults.expect("cap is configured chaos");
    assert_eq!(faults.queue_cap, Some(10_000));
    assert_eq!(faults.shed_policy.as_deref(), Some("drop-newest"));
    assert_eq!(faults.shed + faults.retried + faults.expired, 0);
}

/// At-least-once delivery is invisible: the dedup layer absorbs every
/// duplicate, so a duplicate storm keeps the clean fingerprint while the
/// report counts what it survived.
#[test]
fn dup_storm_is_fully_absorbed_by_admission_dedup() {
    let clean = run_serve(&chaos(7)).unwrap();
    let stormed = run_serve(&ServeConfig {
        fault_plan: Some("dup-storm".into()),
        fault_rate: Some(0.5),
        ..chaos(7)
    })
    .unwrap();
    assert_eq!(
        stormed.report.assignment_fingerprint,
        clean.report.assignment_fingerprint
    );
    assert_eq!(stormed.assignments, clean.assignments);
    let faults = stormed.report.faults.expect("storm is configured");
    assert!(faults.injected > 0, "rate 0.5 must duplicate something");
    assert!(
        faults.duplicates > 0,
        "dedup must have absorbed check-ins/tasks"
    );
    assert!(
        stormed.report.requests > clean.report.requests,
        "duplicates still count as ingested requests"
    );
}

// --- config validation --------------------------------------------------

#[test]
fn chaos_misconfigurations_are_typed_errors() {
    assert!(matches!(
        run_serve(&ServeConfig {
            fault_rate: Some(0.5),
            ..chaos(0)
        }),
        Err(PipelineError::InvalidConfig {
            field: "fault-rate",
            ..
        })
    ));
    for rate in [-0.1, 1.5, f64::NAN] {
        assert!(matches!(
            run_serve(&ServeConfig {
                fault_plan: Some("flaky-wire".into()),
                fault_rate: Some(rate),
                ..chaos(0)
            }),
            Err(PipelineError::InvalidConfig {
                field: "fault-rate",
                ..
            })
        ));
    }
    assert!(matches!(
        run_serve(&ServeConfig {
            queue_cap: Some(0),
            ..chaos(0)
        }),
        Err(PipelineError::InvalidConfig {
            field: "queue-cap",
            ..
        })
    ));
    assert!(matches!(
        run_serve(&ServeConfig {
            shed_policy: Some("drop-oldest".into()),
            ..chaos(0)
        }),
        Err(PipelineError::InvalidConfig {
            field: "shed-policy",
            ..
        })
    ));
    assert!(matches!(
        run_serve(&ServeConfig {
            fault_plan: Some("bogus".into()),
            ..chaos(0)
        }),
        Err(PipelineError::UnknownEntry {
            kind: "fault plan",
            ..
        })
    ));
    assert!(matches!(
        run_serve(&ServeConfig {
            queue_cap: Some(4),
            shed_policy: Some("bogus".into()),
            ..chaos(0)
        }),
        Err(PipelineError::UnknownEntry {
            kind: "shed policy",
            ..
        })
    ));
}
