//! Privacy tuning: the privacy/utility trade-off and an exact Geo-I audit.
//!
//! Sweeps the privacy budget ε and reports how each pipeline's total
//! distance degrades as privacy tightens (the paper's Fig. 7a), then runs an
//! exact audit of Theorem 1 on a small tree: over every leaf triple, the
//! observed privacy-loss rate never exceeds ε.
//!
//! ```sh
//! cargo run --release -p pombm --example privacy_tuning
//! ```

use pombm::{run, Algorithm, PipelineConfig};
use pombm_geom::{seeded_rng, Grid, Rect};
use pombm_hst::Hst;
use pombm_privacy::geo_i::audit_hst_mechanism;
use pombm_privacy::{Epsilon, HstMechanism};
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    let params = SyntheticParams {
        num_tasks: 500,
        num_workers: 1000,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(7, 0));

    println!(
        "Privacy/utility trade-off ({} tasks, {} workers)",
        params.num_tasks, params.num_workers
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "eps", "Lap-GR", "Lap-HG", "TBF"
    );
    for eps in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut row = format!("{eps:>8}");
        for algo in Algorithm::ALL {
            let config = PipelineConfig {
                epsilon: eps,
                ..PipelineConfig::default()
            };
            // Average 3 repetitions to smooth mechanism noise.
            let avg: f64 = (0..3)
                .map(|rep| run(algo, &instance, &config, rep).metrics.total_distance)
                .sum::<f64>()
                / 3.0;
            row.push_str(&format!(" {avg:>14.1}"));
        }
        println!("{row}");
    }

    println!("\nExact Geo-I audit (Theorem 1) on a 2x2-grid tree:");
    let grid = Grid::square(Rect::square(8.0), 2);
    let mut rng = seeded_rng(1, 0);
    let hst = Hst::build(&grid.to_point_set(), &mut rng);
    for eps in [0.1, 0.5, 1.0] {
        let mech = HstMechanism::new(&hst, Epsilon::new(eps));
        let audit = audit_hst_mechanism(&hst, &mech);
        println!(
            "  eps = {eps}: max observed loss rate {:.6} over {} triples -> {}",
            audit.max_loss_rate,
            audit.triples,
            if audit.holds(1e-9) {
                "OK (<= eps)"
            } else {
                "VIOLATION"
            },
        );
        assert!(audit.holds(1e-9));
    }
}
