//! A tour of the three ε-Geo-Indistinguishable mechanisms in this
//! repository: where each one sends the same location, and what that does
//! to downstream matching.
//!
//! * planar Laplace (Andrés et al., CCS'13) — continuous noise in the plane;
//! * exponential mechanism — categorical over the predefined points;
//! * the paper's HST mechanism — categorical over the tree's leaves.
//!
//! ```sh
//! cargo run --release -p pombm --example mechanism_tour
//! ```

use pombm::{run, Algorithm, PipelineConfig, Server};
use pombm_geom::{seeded_rng, Point, Rect};
use pombm_privacy::{Epsilon, ExponentialMechanism, HstMechanism, PlanarLaplace};
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    let epsilon = Epsilon::new(0.6);
    let server = Server::new(Rect::square(200.0), 16, 7);
    let location = Point::new(83.0, 119.0);
    let mut rng = seeded_rng(2020, 0);

    println!(
        "one location, three mechanisms (eps = {}):\n",
        epsilon.value()
    );
    println!("true location: ({}, {})\n", location.x, location.y);

    // 1. Planar Laplace: continuous output.
    let laplace = PlanarLaplace::new(epsilon);
    println!("planar Laplace (continuous plane):");
    for i in 0..3 {
        let z = laplace.obfuscate(&location, &mut rng);
        println!(
            "  sample {i}: ({:>7.2}, {:>7.2})  displaced {:.2}",
            z.x,
            z.y,
            location.dist(&z)
        );
    }

    // 2. Exponential mechanism: one of the predefined points.
    let mut expm = ExponentialMechanism::new(server.hst().points().clone(), epsilon);
    let snapped = server.grid().nearest(&location);
    println!("\nexponential mechanism (predefined points):");
    for i in 0..3 {
        let z = expm.obfuscate(snapped, &mut rng);
        let p = server.hst().points().point(z);
        println!(
            "  sample {i}: point #{z} at ({:>6.1}, {:>6.1})  displaced {:.2}",
            p.x,
            p.y,
            location.dist(&p)
        );
    }

    // 3. The paper's HST mechanism: a leaf of the complete tree (possibly
    //    fake; fake leaves resolve to a representative real point).
    let hst_mech = HstMechanism::new(server.hst(), epsilon);
    let leaf = server.snap(&location);
    println!("\nHST mechanism (tree leaves; the paper's Alg. 3):");
    for i in 0..3 {
        let z = hst_mech.obfuscate(server.hst(), leaf, &mut rng);
        let p = server.hst().representative_point(z);
        println!(
            "  sample {i}: {z}{}  near ({:>6.1}, {:>6.1})  tree distance {:.2}",
            if server.hst().is_real(z) {
                ""
            } else {
                " (fake)"
            },
            p.x,
            p.y,
            server.hst().tree_dist(leaf, z)
        );
    }

    // What the choice means downstream: same workload, same matcher family,
    // different mechanisms.
    let params = SyntheticParams {
        num_tasks: 800,
        num_workers: 1500,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(11, 0));
    let config = PipelineConfig::default();
    println!("\nsame workload through each mechanism + HST-greedy:");
    println!("{:<8} {:>16}", "algo", "total distance");
    for algo in [Algorithm::LapHg, Algorithm::ExpHg, Algorithm::Tbf] {
        let r = run(algo, &instance, &config, 0);
        println!("{:<8} {:>16.1}", algo.label(), r.metrics.total_distance);
    }
    println!("\nTBF wins because its noise respects the tree the matcher uses.");
}
