//! Food delivery: the case study on matching-size maximization (Sec. IV-C).
//!
//! Couriers accept orders only within a bounded pickup radius. The platform
//! must assign each incoming order to a courier who can actually reach it —
//! judging reachability on privacy-protected locations. Compares the Prob
//! baseline (Laplace + probabilistic reachability) against TBF (HST
//! mechanism + nearest reachable worker on the tree) by successful matches.
//!
//! ```sh
//! cargo run --release -p pombm --example food_delivery
//! ```

use pombm::{run_case_study, CaseStudyAlgorithm, Server};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    let params = SyntheticParams {
        num_tasks: 1000,
        num_workers: 2000,
        ..SyntheticParams::default()
    };
    // Orders + couriers with reachable radii U[10, 20] units.
    let instance = synthetic::generate_with_radii(&params, &mut seeded_rng(99, 0));
    let server = Server::new(instance.region, 32, 99);

    println!(
        "Food delivery case study: {} orders, {} couriers, pickup radius U[10,20]",
        instance.num_tasks(),
        instance.num_workers()
    );
    println!("{:>8} {:>16} {:>16}", "eps", "Prob matches", "TBF matches");
    for eps in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let mut sizes = Vec::new();
        for algo in CaseStudyAlgorithm::ALL {
            let avg: f64 = (0..3)
                .map(|rep| run_case_study(algo, &instance, &server, eps, rep).matching_size as f64)
                .sum::<f64>()
                / 3.0;
            sizes.push(avg);
        }
        println!("{eps:>8} {:>16.1} {:>16.1}", sizes[0], sizes[1]);
    }
    println!("\nHigher is better: matches are only counted when the courier's true\nlocation is within the pickup radius of the order.");
}
