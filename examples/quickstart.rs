//! Quickstart: run the paper's TBF pipeline end to end on a synthetic
//! workload and print the headline metrics.
//!
//! ```sh
//! cargo run --release -p pombm --example quickstart
//! ```

use pombm::{run, Algorithm, PipelineConfig};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    // A Table II-style synthetic workload: tasks and workers drawn from a
    // Normal distribution in a 200 x 200 space.
    let params = SyntheticParams {
        num_tasks: 1000,
        num_workers: 2000,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(42, 0));

    // ε = 0.6 per workspace unit, 32 x 32 predefined points.
    let config = PipelineConfig {
        epsilon: 0.6,
        ..PipelineConfig::default()
    };

    println!(
        "POMBM quickstart: {} tasks, {} workers, eps = {}",
        params.num_tasks, params.num_workers, config.epsilon
    );
    println!(
        "{:<8} {:>16} {:>14} {:>12}",
        "algo", "total distance", "assign time", "per task"
    );
    for algo in Algorithm::ALL {
        let result = run(algo, &instance, &config, 0);
        println!(
            "{:<8} {:>16.1} {:>14.2?} {:>12.2?}",
            algo.label(),
            result.metrics.total_distance,
            result.metrics.assign_time,
            result.metrics.avg_task_latency(),
        );
    }
    println!(
        "\nLower total distance is better; all three mechanisms are eps-Geo-Indistinguishable."
    );
}
