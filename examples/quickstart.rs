//! Quickstart: run pipelines end to end on a synthetic workload through
//! the mechanism × matcher registry, and compose a pairing the paper never
//! evaluated.
//!
//! ```sh
//! cargo run --release -p pombm --example quickstart
//! ```

use pombm::{registry, run_spec, PipelineConfig};
use pombm_geom::seeded_rng;
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    // A Table II-style synthetic workload: tasks and workers drawn from a
    // Normal distribution in a 200 x 200 space.
    let params = SyntheticParams {
        num_tasks: 1000,
        num_workers: 2000,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(42, 0));

    // ε = 0.6 per workspace unit, 32 x 32 predefined points.
    let config = PipelineConfig {
        epsilon: 0.6,
        ..PipelineConfig::default()
    };

    println!(
        "POMBM quickstart: {} tasks, {} workers, eps = {}",
        params.num_tasks, params.num_workers, config.epsilon
    );
    println!(
        "{:<10} {:<22} {:>16} {:>14} {:>12}",
        "algo", "mechanism + matcher", "total distance", "assign time", "per task"
    );

    // The paper's three compared algorithms, straight from the registry...
    for name in ["lap-gr", "lap-hg", "tbf"] {
        let spec = registry().spec(name).expect("registered");
        let result = run_spec(spec, &instance, &config, 0).expect("runnable");
        println!(
            "{:<10} {:<22} {:>16.1} {:>14.2?} {:>12.2?}",
            spec.label(),
            format!("{} + {}", spec.mechanism.name(), spec.matcher.name()),
            result.metrics.total_distance,
            result.metrics.assign_time,
            result.metrics.avg_task_latency(),
        );
    }

    // ...plus a free pairing the closed Algorithm enum could not express.
    let novel = registry().compose("exp", "chain").expect("both registered");
    let result = run_spec(&novel, &instance, &config, 0).expect("runnable");
    println!(
        "{:<10} {:<22} {:>16.1} {:>14.2?} {:>12.2?}",
        novel.name(),
        "exp + chain",
        result.metrics.total_distance,
        result.metrics.assign_time,
        result.metrics.avg_task_latency(),
    );

    println!(
        "\nLower total distance is better; every mechanism above is \
         eps-Geo-Indistinguishable. Run `pombm algorithms` for the full catalogue."
    );
}
