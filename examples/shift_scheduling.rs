//! Dynamic fleets: task assignment when workers run shifts instead of
//! being registered upfront.
//!
//! Sweeps shift duration (fleet coverage) in a worker-rich regime and
//! shows the trade-off the static model hides: with short shifts many
//! workers depart unassigned and tasks hit an empty pool; with long shifts
//! the pool stays deep and the system approaches the paper's always-on
//! setting (fewer drops, nearer workers).
//!
//! ```sh
//! cargo run --release -p pombm --example shift_scheduling
//! ```

use pombm::{run_dynamic, ArrivalProcess, DynamicConfig};
use pombm_geom::seeded_rng;
use pombm_workload::shifts::ShiftPlan;
use pombm_workload::{synthetic, SyntheticParams};

fn main() {
    // Worker-rich: twice as many workers as tasks, so whether a worker is
    // *on shift* when a task arrives is the binding constraint.
    let params = SyntheticParams {
        num_tasks: 300,
        num_workers: 600,
        ..SyntheticParams::default()
    };
    let instance = synthetic::generate(&params, &mut seeded_rng(99, 0));
    let horizon = 1000.0;
    let times = ArrivalProcess::Uniform {
        window_secs: horizon * 0.99,
    }
    .timestamps(params.num_tasks, &mut seeded_rng(99, 1));
    let config = DynamicConfig::default();

    println!(
        "dynamic fleet: {} tasks over {horizon}s, {} workers on random shifts\n",
        params.num_tasks, params.num_workers
    );
    println!(
        "{:>14} {:>9} {:>9} {:>9} {:>13} {:>13}",
        "shift length", "coverage", "assigned", "dropped", "assign rate", "avg distance"
    );
    for (i, (lo, hi)) in [
        (25.0, 75.0),
        (100.0, 200.0),
        (300.0, 500.0),
        (900.0, 1000.0),
    ]
    .into_iter()
    .enumerate()
    {
        let plan = ShiftPlan::uniform(
            params.num_workers,
            horizon,
            lo,
            hi,
            &mut seeded_rng(99, 2 + i as u64),
        );
        let out = run_dynamic(&instance, &times, &plan, &config);
        let avg_dist = if out.pairs.is_empty() {
            0.0
        } else {
            out.total_distance / out.pairs.len() as f64
        };
        println!(
            "{:>9.0}-{:<4.0} {:>9.2} {:>9} {:>9} {:>13.2} {:>13.2}",
            lo,
            hi,
            plan.mean_coverage(),
            out.pairs.len(),
            out.dropped_tasks,
            out.assignment_rate(),
            avg_dist
        );
    }
    println!("\nlonger shifts -> higher coverage -> fewer drops and nearer workers;");
    println!("the paper's static model is the coverage = 1.0 limit.");
}
