//! Deployment lifecycle: what happens to assignment quality when workers
//! re-report every "day" under a finite lifetime privacy budget.
//!
//! Each fresh obfuscated report costs ε; by sequential composition a worker
//! with lifetime budget E can afford E/ε fresh reports. After that it keeps
//! serving from its last (increasingly stale) report. This example runs the
//! multi-epoch simulator and shows the total distance degrading once the
//! fleet's budgets run out.
//!
//! ```sh
//! cargo run --release -p pombm --example epoch_budget
//! ```

use pombm::{run_epochs, EpochConfig};

fn main() {
    let config = EpochConfig {
        num_epochs: 12,
        lifetime_epsilon: 2.4, // 4 fresh reports at ε = 0.6 each
        epoch_epsilon: 0.6,
        worker_drift: 10.0,
        tasks_per_epoch: 300,
        ..EpochConfig::default()
    };
    let num_workers = 800;

    println!(
        "epoch simulation: {num_workers} workers, lifetime E = {}, per-report eps = {}",
        config.lifetime_epsilon, config.epoch_epsilon
    );
    println!(
        "=> each worker affords {} fresh reports, then serves stale\n",
        (config.lifetime_epsilon / config.epoch_epsilon) as u32
    );

    let report = run_epochs(num_workers, &config);
    println!(
        "{:>5} {:>8} {:>8} {:>11} {:>14}",
        "epoch", "fresh", "stale", "staleness", "total dist"
    );
    for m in &report.per_epoch {
        println!(
            "{:>5} {:>8} {:>8} {:>11.2} {:>14.1}",
            m.epoch, m.fresh_reports, m.stale_reports, m.avg_report_staleness, m.total_distance
        );
    }
    println!(
        "\ndistance degradation last/first: {:.2}x (staleness is the price of capping leakage)",
        report.degradation()
    );
}
