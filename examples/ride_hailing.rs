//! Ride hailing: the paper's motivating scenario (Uber-style dispatch).
//!
//! Simulates a peak half-hour in a 10 km x 10 km city: thousands of
//! passengers (tasks) request rides and must be dispatched immediately to
//! drivers (workers) — without the dispatch server ever seeing true
//! locations. Compares the three ε-Geo-Indistinguishable pipelines on the
//! Chengdu-like trace over several simulated days.
//!
//! ```sh
//! cargo run --release -p pombm --example ride_hailing
//! ```

use pombm::{run, Algorithm, PipelineConfig};
use pombm_workload::chengdu::{self, CityModel};

/// Meters per workspace unit (10 km -> 200 units, the synthetic scale).
const UNIT_METERS: f64 = 50.0;

fn main() {
    let city = CityModel::generate(2016);
    let days = 3;
    let drivers = 8000;
    let config = PipelineConfig {
        epsilon: 0.6,
        euclid_cells: 32,
        engine: pombm_matching::HstGreedyEngine::Indexed,
        ..PipelineConfig::default()
    };

    println!(
        "Ride hailing over {days} simulated Chengdu days, {drivers} drivers, eps = {}",
        config.epsilon
    );
    println!(
        "{:<8} {:>10} {:>20} {:>22} {:>14}",
        "algo", "rides", "total distance (km)", "avg pickup dist (m)", "assign time"
    );

    for algo in Algorithm::ALL {
        let mut rides = 0usize;
        let mut total_m = 0.0;
        let mut time = std::time::Duration::ZERO;
        for day in 0..days {
            let instance =
                chengdu::generate_day(&city, day, drivers, 2016).scaled(1.0 / UNIT_METERS);
            let result = run(algo, &instance, &config, day as u64);
            rides += result.matching.size();
            total_m += result.metrics.total_distance * UNIT_METERS;
            time += result.metrics.assign_time;
        }
        println!(
            "{:<8} {:>10} {:>20.1} {:>22.0} {:>14.2?}",
            algo.label(),
            rides,
            total_m / 1000.0,
            total_m / rides as f64,
            time,
        );
    }
    println!("\nTBF should yield clearly shorter pickup distances than the Laplace baselines.");
}
